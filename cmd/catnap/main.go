// Command catnap runs the paper's experiments by ID and prints the
// corresponding table or figure data as text (or CSV with -csv).
//
// Usage:
//
//	catnap [flags] <experiment>
//
// The experiment list comes from the catnap.Experiments registry: fig2
// table2 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 headline —
// plus, beyond the paper: profiles hetero topology, and
// "ablation <study>". "designs" lists the registered configurations.
//
// Grid-shaped experiments run on the parallel sweep engine; -jobs
// selects the worker count (default GOMAXPROCS) and -v logs every sweep
// point. Progress and the end-of-run summary go to stderr, result
// tables to stdout. Interrupting (Ctrl-C) cancels the sweep between
// simulated cycles. Results are bit-identical at any -jobs value.
//
// Cycle-level telemetry (see internal/telemetry) is off by default and
// free when off; -metrics and -events attach a recorder and export what
// it saw after the run:
//
//	catnap -experiment fig12 -metrics m.jsonl -events e.jsonl
//
// Flags:
//
//	-experiment  experiment name (alternative to the positional argument)
//	-quick       reduced cycle counts (fast smoke run)
//	-csv         emit CSV instead of aligned text
//	-pattern     traffic pattern for fig11 (uniform-random|transpose|bit-complement)
//	-jobs        parallel sweep workers (0 = GOMAXPROCS)
//	-sim-workers router-phase shards inside each simulator (0 = off, -1 = GOMAXPROCS)
//	-timeout     per-point wall-clock limit (0 = none)
//	-metrics     write telemetry metrics to this file (JSONL; CSV if it ends in .csv)
//	-events      stream telemetry events to this JSONL file
//	-window      telemetry/fig12 series window in cycles (0 = the paper's 50)
//	-v           log every sweep point as it completes
//	-cpuprofile  write a pprof CPU profile of the run to this file
//	-memprofile  write a pprof heap profile at exit to this file
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	catnap "github.com/catnap-noc/catnap"
	"github.com/catnap-noc/catnap/internal/prof"
	"github.com/catnap-noc/catnap/internal/runner"
	"github.com/catnap-noc/catnap/internal/telemetry"
)

var (
	experimentF = flag.String("experiment", "", "experiment name (alternative to the positional argument)")
	quick       = flag.Bool("quick", false, "reduced cycle counts for a fast smoke run")
	csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")
	pattern     = flag.String("pattern", "uniform-random", "traffic pattern for fig11")
	jobs        = flag.Int("jobs", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	simWorkers  = flag.Int("sim-workers", 0, "router-phase shards inside each simulator (0 = off, -1 = GOMAXPROCS); results are bit-identical at any value")
	noSkip      = flag.Bool("no-skip", false, "disable event-driven idle fast-forward (bit-identical, only slower on idle stretches)")
	timeout     = flag.Duration("timeout", 0, "per-point wall-clock limit (0 = none)")
	metricsFile = flag.String("metrics", "", "write telemetry metrics to this file (JSONL; CSV if it ends in .csv)")
	eventsFile  = flag.String("events", "", "stream telemetry events (sleep/wake, congestion, sweep lifecycle) to this JSONL file")
	window      = flag.Int64("window", 0, "telemetry/fig12 series window in cycles (0 = the paper's 50)")
	verbose     = flag.Bool("v", false, "log every sweep point as it completes")
	cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	// os.Exit skips deferred calls, so the exit code is computed in
	// mainCode, whose defers (profile stop) run before the process exits.
	os.Exit(mainCode())
}

func mainCode() (code int) {
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap:", err)
		return 1
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "catnap: profile:", perr)
			if code == 0 {
				code = 1
			}
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch flag.NArg() {
	case 0:
		if *experimentF == "" {
			usage()
			return 2
		}
		err = run(ctx, *experimentF)
	case 1:
		if *experimentF != "" && *experimentF != flag.Arg(0) {
			err = fmt.Errorf("both -experiment %s and argument %s given", *experimentF, flag.Arg(0))
			break
		}
		err = run(ctx, flag.Arg(0))
	case 2:
		if flag.Arg(0) != "ablation" {
			usage()
			return 2
		}
		err = runAblation(flag.Arg(1))
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap:", err)
		return 1
	}
	return 0
}

// run executes one registry experiment (or a listing command) and
// renders its table.
func run(ctx context.Context, name string) error {
	switch name {
	case "designs":
		for _, d := range catnap.Designs() {
			cfg, err := catnap.Design(d)
			if err != nil {
				return err
			}
			fmt.Printf("%-18s %dx%d mesh, %d subnet(s) x %db @ %.3fV\n",
				d, cfg.Rows, cfg.Cols, cfg.Subnets, cfg.LinkWidthBits, cfg.VoltageV)
		}
		return nil
	case "list":
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, e := range catnap.Experiments() {
			fmt.Fprintf(w, "%s\t%s\t%s\n", e.Name, e.Kind, e.Description)
		}
		return w.Flush()
	}

	rec, finish, err := telemetryRecorder()
	if err != nil {
		return err
	}

	prog := runner.NewConsole(os.Stderr, *verbose)
	res, err := catnap.RunExperiment(ctx, name, catnap.ExperimentOpts{
		Scale:      scale(),
		Loads:      loads(),
		Pattern:    *pattern,
		Window:     *window,
		NoIdleSkip: *noSkip,
		SimWorkers: *simWorkers,
		Sweep:      catnap.SweepOptions{Jobs: *jobs, Timeout: *timeout, Progress: prog},
		Telemetry:  rec,
	})
	prog.Finish()
	if err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	table(res.Header, res.Rows)
	if res.Note != "" {
		fmt.Println("\n" + res.Note)
	}
	return nil
}

// telemetryRecorder builds the recorder selected by -metrics/-events
// (nil when neither is set — the zero-overhead path) plus a finish
// function that flushes the event stream and writes the metrics file.
func telemetryRecorder() (*telemetry.Recorder, func() error, error) {
	if *metricsFile == "" && *eventsFile == "" {
		return nil, func() error { return nil }, nil
	}
	var eventsOut *os.File
	topts := telemetry.Options{Window: *window}
	if *eventsFile != "" {
		f, err := os.Create(*eventsFile)
		if err != nil {
			return nil, nil, err
		}
		eventsOut = f
		topts.Events = f
	}
	rec := telemetry.NewRecorder(topts)
	finish := func() error {
		if err := rec.Flush(); err != nil {
			return err
		}
		if eventsOut != nil {
			if err := eventsOut.Close(); err != nil {
				return err
			}
		}
		if *metricsFile == "" {
			return nil
		}
		f, err := os.Create(*metricsFile)
		if err != nil {
			return err
		}
		if strings.HasSuffix(*metricsFile, ".csv") {
			err = rec.WriteMetricsCSV(f)
		} else {
			err = rec.WriteMetricsJSONL(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return rec, finish, nil
}

// runAblation renders one design-choice study around the Catnap
// operating point.
func runAblation(study string) error {
	pts, err := catnap.RunAblation(study, scale())
	if err != nil {
		return err
	}
	var out [][]string
	for _, p := range pts {
		out = append(out, []string{
			p.Variant, f(p.Offered, 2),
			f(p.Results.Power.Total, 1), f(p.Results.CSCPercent, 1),
			f(p.Results.AvgLatency, 1), f(p.Results.AcceptedThroughput, 3),
		})
	}
	table([]string{"variant", "offered", "power (W)", "CSC (%)", "latency (cyc)", "accepted"}, out)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: catnap [flags] <experiment>

Experiments (each regenerates one table/figure of the ISCA'13 paper):
`)
	for _, e := range catnap.Experiments() {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", e.Name, e.Description)
	}
	fmt.Fprintf(os.Stderr, `
Listings and studies:
  list               the experiment registry with kinds
  designs            list registered network configurations
  ablation <study>   studies: %s

Flags:
`, strings.Join(catnap.AblationNames(), " "))
	flag.PrintDefaults()
}

// scale returns the simulation scale override for the current -quick
// setting; the zero Scale selects each experiment's own defaults.
func scale() catnap.Scale {
	if *quick {
		return catnap.Scale{Warmup: 1000, Measure: 4000}
	}
	return catnap.Scale{}
}

// loads returns the offered-load sweep for the current -quick setting;
// nil selects each experiment's default sweep.
func loads() []float64 {
	if *quick {
		return []float64{0.05, 0.15, 0.30, 0.45}
	}
	return nil
}

// table renders rows with a header through a tabwriter or as CSV.
func table(header []string, rows [][]string) {
	if *csv {
		fmt.Println(strings.Join(header, ","))
		for _, r := range rows {
			fmt.Println(strings.Join(r, ","))
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
}

func f(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
