package catnap_test

import (
	"context"
	"fmt"

	catnap "github.com/catnap-noc/catnap"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// ExampleDesign shows how paper configurations are resolved by name.
func ExampleDesign() {
	cfg, _ := catnap.Design("4NT-128b-PG")
	fmt.Printf("%s: %d subnets x %d bits at %.3f V\n", cfg.Name, cfg.Subnets, cfg.LinkWidthBits, cfg.VoltageV)
	cfg, _ = catnap.Design("1NT-512b")
	fmt.Printf("%s: %d subnet x %d bits at %.3f V\n", cfg.Name, cfg.Subnets, cfg.LinkWidthBits, cfg.VoltageV)
	// Output:
	// 4NT-128b-PG: 4 subnets x 128 bits at 0.625 V
	// 1NT-512b: 1 subnet x 512 bits at 0.750 V
}

// ExampleRunExperiment reproduces the paper's Table 2 through the
// experiment registry, the sole entry point for the canned
// tables/figures.
func ExampleRunExperiment() {
	res, err := catnap.RunExperiment(context.Background(), "table2", catnap.ExperimentOpts{})
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%-10s %3sb %sGHz %sV\n", row[0], row[1], row[2], row[3])
	}
	// Output:
	// Single-NoC 512b 2.0GHz 0.750V
	// Single-NoC 512b 1.4GHz 0.625V
	// Multi-NoC  128b 2.9GHz 0.750V
	// Multi-NoC  128b 2.0GHz 0.625V
}

// ExampleSimulator_RunSynthetic runs the Catnap design at a light load
// and reports the energy-proportionality signature: nearly all traffic in
// subnet 0, most router-cycles compensated sleep.
func ExampleSimulator_RunSynthetic() {
	cfg, _ := catnap.Design("4NT-128b-PG")
	sim, _ := catnap.New(cfg)
	res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.03), 2000, 8000)
	fmt.Printf("subnet 0 share > 95%%: %v\n", res.SubnetShare[0] > 0.95)
	fmt.Printf("CSC > 60%%: %v\n", res.CSCPercent > 60)
	fmt.Printf("all offered traffic accepted: %v\n", res.AcceptedThroughput > 0.029)
	// Output:
	// subnet 0 share > 95%: true
	// CSC > 60%: true
	// all offered traffic accepted: true
}
