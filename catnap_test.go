package catnap

import (
	"context"
	"testing"

	"github.com/catnap-noc/catnap/internal/power"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func TestDesignRegistry(t *testing.T) {
	names := Designs()
	if len(names) < 10 {
		t.Fatalf("only %d designs registered: %v", len(names), names)
	}
	for _, n := range names {
		cfg, err := Design(n)
		if err != nil {
			t.Fatalf("Design(%q): %v", n, err)
		}
		if cfg.Name != n {
			t.Errorf("Design(%q).Name = %q", n, cfg.Name)
		}
		if _, err := New(cfg); err != nil {
			t.Errorf("New(Design(%q)): %v", n, err)
		}
	}
	if _, err := Design("bogus"); err == nil {
		t.Error("Design(bogus) should fail")
	}
}

func TestDesignVoltages(t *testing.T) {
	// Table 2: the evaluated designs run at 0.750 V (512b) and 0.625 V
	// (128b) to hit 2 GHz.
	single := mustDesign("1NT-512b")
	multi := mustDesign("4NT-128b-PG")
	if single.VoltageV < 0.70 || single.VoltageV > 0.80 {
		t.Errorf("1NT-512b voltage = %.3f, want ~0.750", single.VoltageV)
	}
	if multi.VoltageV < 0.58 || multi.VoltageV > 0.67 {
		t.Errorf("4NT-128b voltage = %.3f, want ~0.625", multi.VoltageV)
	}
	if multi.VoltageV >= single.VoltageV {
		t.Errorf("narrow routers must reach 2 GHz at lower voltage: %.3f vs %.3f", multi.VoltageV, single.VoltageV)
	}
}

func TestCatnapLowLoadBehaviour(t *testing.T) {
	sim := mustSim(mustDesign("4NT-128b-PG"))
	res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.03), 2000, 8000)

	if res.SubnetShare[0] < 0.95 {
		t.Errorf("subnet 0 share = %.3f at low load, want ~1 (shares %v)", res.SubnetShare[0], res.SubnetShare)
	}
	if res.CSCPercent < 50 {
		t.Errorf("CSC = %.1f%% at 0.03 load, want substantial (paper: ~74%%)", res.CSCPercent)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("no packets delivered")
	}
	if res.AcceptedThroughput < 0.028 {
		t.Errorf("accepted throughput %.4f below offered 0.03: Catnap must not drop goodput at low load", res.AcceptedThroughput)
	}
}

func TestGatingCutsPowerAtLowLoad(t *testing.T) {
	load := traffic.Constant(0.03)
	run := func(design string) Results {
		sim := mustSim(mustDesign(design))
		return sim.RunSynthetic(traffic.UniformRandom{}, load, 2000, 8000)
	}
	multiPG := run("4NT-128b-PG")
	multi := run("4NT-128b")
	singlePG := run("1NT-512b-PG")
	single := run("1NT-512b")

	// Catnap Multi-NoC gating must save a large share of static power.
	if multiPG.Power.Static > 0.5*multi.Power.Static {
		t.Errorf("Catnap static %.1fW vs ungated %.1fW: want >50%% saving at low load",
			multiPG.Power.Static, multi.Power.Static)
	}
	// Single-NoC gating saves much less (the paper's core observation).
	singleSaving := 1 - singlePG.Power.Static/single.Power.Static
	multiSaving := 1 - multiPG.Power.Static/multi.Power.Static
	if multiSaving <= singleSaving {
		t.Errorf("Multi-NoC static saving %.2f should exceed Single-NoC's %.2f", multiSaving, singleSaving)
	}
	// And Single-NoC pays a larger latency penalty for gating.
	singlePenalty := singlePG.AvgLatency / single.AvgLatency
	multiPenalty := multiPG.AvgLatency / multi.AvgLatency
	t.Logf("static: single %.1f→%.1fW (%.0f%%), multi %.1f→%.1fW (%.0f%%); latency penalty single %.2fx multi %.2fx; CSC single %.1f%% multi %.1f%%",
		single.Power.Static, singlePG.Power.Static, singleSaving*100,
		multi.Power.Static, multiPG.Power.Static, multiSaving*100,
		singlePenalty, multiPenalty, singlePG.CSCPercent, multiPG.CSCPercent)
	if multiPG.CSCPercent <= singlePG.CSCPercent {
		t.Errorf("Multi-NoC CSC %.1f%% should exceed Single-NoC CSC %.1f%%", multiPG.CSCPercent, singlePG.CSCPercent)
	}
}

func TestFig12SubnetsOpenDuringBurst(t *testing.T) {
	points := RunFig12(3000, 50)
	if len(points) < 50 {
		t.Fatalf("got %d samples", len(points))
	}
	// Before the first burst (cycle < 1000): subnet 0 dominates.
	var preShare, burstShare float64
	var preN, burstN int
	var burstAccepted float64
	for _, p := range points {
		switch {
		case p.Cycle > 500 && p.Cycle <= 1000:
			preShare += p.SubnetShare[0]
			preN++
		case p.Cycle > 1200 && p.Cycle <= 1500:
			burstShare += p.SubnetShare[0]
			burstAccepted += p.Accepted
			burstN++
		}
	}
	preShare /= float64(preN)
	burstShare /= float64(burstN)
	burstAccepted /= float64(burstN)
	if preShare < 0.9 {
		t.Errorf("pre-burst subnet-0 share %.2f, want ~1", preShare)
	}
	if burstShare > 0.6 {
		t.Errorf("during burst subnet-0 share %.2f, want load spread across subnets", burstShare)
	}
	// Accepted throughput must ramp toward the 0.30 offered burst.
	if burstAccepted < 0.20 {
		t.Errorf("late-burst accepted throughput %.3f, want ramp toward 0.30", burstAccepted)
	}
}

func TestFig7Runner(t *testing.T) {
	res, err := RunExperiment(context.Background(), "fig7", ExperimentOpts{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Data.([]Fig7Row)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[2].Breakdown.Total >= rows[1].Breakdown.Total {
		t.Errorf("voltage-scaled Multi-NoC (%.1fW) should beat 0.750V (%.1fW)", rows[2].Breakdown.Total, rows[1].Breakdown.Total)
	}
}

func TestProfilesCharacterization(t *testing.T) {
	rows, err := RunProfiles(Scale{Warmup: 500, Measure: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 35 {
		t.Fatalf("characterized %d benchmarks, want 35", len(rows))
	}
	byName := map[string]ProfileRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		if r.IPC <= 0 || r.PacketsPerNodeCycle <= 0 {
			t.Errorf("%s: degenerate characterization %+v", r.Benchmark, r)
		}
	}
	// The MPKI ordering must survive the closed loop at the extremes:
	// mcf (95 MPKI) demands far more network than gromacs (1.2).
	if byName["mcf"].PacketsPerNodeCycle < 4*byName["gromacs"].PacketsPerNodeCycle {
		t.Errorf("mcf demand %.3f not >> gromacs %.3f",
			byName["mcf"].PacketsPerNodeCycle, byName["gromacs"].PacketsPerNodeCycle)
	}
	if byName["mcf"].IPC >= byName["gromacs"].IPC {
		t.Errorf("mcf IPC %.2f should trail gromacs %.2f", byName["mcf"].IPC, byName["gromacs"].IPC)
	}
}

func TestHeteroRunner(t *testing.T) {
	rows, err := RunHetero(Scale{Warmup: 2000, Measure: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d variants", len(rows))
	}
	for _, r := range rows {
		if r.Results.PacketsDelivered == 0 || r.Results.SystemIPC <= 0 {
			t.Fatalf("%s: stalled (%+v)", r.Variant, r.Results)
		}
	}
	// Regional detection must not be worse on the non-uniform placement;
	// the paper's claim is that it reacts earlier than local-only.
	regional, local := rows[0].Results, rows[1].Results
	if regional.P99Latency > local.P99Latency*1.5 {
		t.Errorf("regional p99 %.0f much worse than local-only %.0f", regional.P99Latency, local.P99Latency)
	}
	t.Logf("regional: lat %.1f p99 %.0f IPC %.1f | local-only: lat %.1f p99 %.0f IPC %.1f",
		regional.AvgLatency, regional.P99Latency, regional.SystemIPC,
		local.AvgLatency, local.P99Latency, local.SystemIPC)
}

func TestTraceIntegration(t *testing.T) {
	var buf testBuffer
	sim := mustSim(mustDesign("4NT-128b-PG"))
	tw := sim.EnableTrace(&buf)
	res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.05), 500, 2000)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() == 0 || res.PacketsDelivered == 0 {
		t.Fatal("no packets traced")
	}
	if buf.n == 0 {
		t.Fatal("nothing written")
	}
}

// testBuffer is a minimal io.Writer counting bytes.
type testBuffer struct{ n int }

func (b *testBuffer) Write(p []byte) (int, error) { b.n += len(p); return len(p), nil }

func TestRealCoherenceFacade(t *testing.T) {
	cfg := mustDesign("4NT-128b-PG")
	cfg.AppTraffic = true
	cfg.RealCoherence = true
	sim := mustSim(cfg)
	sys, err := sim.UseMix("Medium-Heavy")
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2000)
	sim.StartMeasure()
	sim.Run(6000)
	res := sim.StopMeasure()
	if res.SystemIPC <= 0 || res.PacketsDelivered == 0 {
		t.Fatalf("stateful coherence stalled: %+v", res)
	}
	if err := sys.CheckCoherence(false); err != nil {
		t.Fatal(err)
	}
	getS, getM, _, _, _, _, _ := sys.CoherenceStats()
	if getS == 0 || getM == 0 {
		t.Error("no protocol traffic")
	}
	// The Catnap behaviour must survive the protocol swap: real traffic
	// still concentrates in the lower subnets at this load.
	if res.SubnetShare[0] < 0.3 {
		t.Errorf("subnet shares %v under stateful coherence", res.SubnetShare)
	}
}

func TestTorusDesigns(t *testing.T) {
	mesh := mustSim(mustDesign("4NT-128b-PG"))
	torus := mustSim(mustDesign("4NT-128b-PG-torus"))
	mres := mesh.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.05), 1500, 6000)
	tres := torus.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.05), 1500, 6000)
	if tres.PacketsDelivered == 0 {
		t.Fatal("torus delivered nothing")
	}
	// Wraparound halves the average distance: latency must improve.
	if tres.AvgLatency >= mres.AvgLatency {
		t.Errorf("torus latency %.1f should beat mesh %.1f at low load", tres.AvgLatency, mres.AvgLatency)
	}
	// The Catnap story survives: most traffic in subnet 0, solid CSC.
	if tres.SubnetShare[0] < 0.9 || tres.CSCPercent < 40 {
		t.Errorf("torus Catnap behaviour off: share0=%.2f CSC=%.1f%%", tres.SubnetShare[0], tres.CSCPercent)
	}
	// App traffic needs per-class VC masks, which torus mode reserves.
	bad := mustDesign("4NT-128b-PG-torus")
	bad.AppTraffic = true
	if _, err := New(bad); err == nil {
		t.Error("torus + app-traffic class masks should be rejected")
	}
}

func TestTable2Runner(t *testing.T) {
	res, err := RunExperiment(context.Background(), "table2", ExperimentOpts{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Data.([]power.Table2Row)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.FreqGHz <= 0 {
			t.Errorf("%v: non-positive frequency", r)
		}
	}
}

// TestFBflyDesignTakesEffect guards the facade→engine lowering: the
// flattened-butterfly design must actually build a 2-hop network (a
// regression here once produced mesh results under an fbfly name).
func TestFBflyDesignTakesEffect(t *testing.T) {
	sim := mustSim(mustDesign("4NT-128b-PG-fbfly"))
	if got := sim.Net.Topo().Name(); got != "fbfly" {
		t.Fatalf("topology = %q, want fbfly", got)
	}
	if h := sim.Net.Topo().Hops(0, 63); h != 2 {
		t.Fatalf("corner hops = %d, want 2", h)
	}
	torus := mustSim(mustDesign("4NT-128b-PG-torus"))
	if got := torus.Net.Topo().Name(); got != "torus" {
		t.Fatalf("topology = %q, want torus", got)
	}
}
