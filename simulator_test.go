package catnap

import (
	"math"
	"testing"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// TestMeasurementWindowDeltas: two consecutive windows at the same steady
// load must report (nearly) identical quantities — i.e., StopMeasure
// returns deltas, not cumulative totals.
func TestMeasurementWindowDeltas(t *testing.T) {
	sim := mustSim(mustDesign("4NT-128b"))
	sim.UseSynthetic(traffic.UniformRandom{}, traffic.Constant(0.1), 1)
	sim.Run(3000) // steady state

	sim.StartMeasure()
	sim.Run(5000)
	r1 := sim.StopMeasure()
	sim.StartMeasure()
	sim.Run(5000)
	r2 := sim.StopMeasure()

	if r1.Cycles != 5000 || r2.Cycles != 5000 {
		t.Fatalf("window lengths %d, %d", r1.Cycles, r2.Cycles)
	}
	if rel(r1.AcceptedThroughput, r2.AcceptedThroughput) > 0.05 {
		t.Errorf("throughput windows differ: %.4f vs %.4f", r1.AcceptedThroughput, r2.AcceptedThroughput)
	}
	if rel(r1.Power.Total, r2.Power.Total) > 0.05 {
		t.Errorf("power windows differ: %.2f vs %.2f", r1.Power.Total, r2.Power.Total)
	}
	if rel(r1.AvgLatency, r2.AvgLatency) > 0.10 {
		t.Errorf("latency windows differ: %.2f vs %.2f", r1.AvgLatency, r2.AvgLatency)
	}
	// Delivered counts must be per-window, not cumulative.
	if r2.PacketsDelivered > 2*r1.PacketsDelivered {
		t.Errorf("second window looks cumulative: %d vs %d", r2.PacketsDelivered, r1.PacketsDelivered)
	}
}

// TestMeasurementCSCDelta: a window opened after long sleep must not
// inherit the pre-window compensated cycles.
func TestMeasurementCSCDelta(t *testing.T) {
	sim := mustSim(mustDesign("4NT-128b-PG"))
	sim.Run(5000) // subnets 1..3 sleep the whole time (no traffic)
	sim.StartMeasure()
	sim.Run(1000)
	r := sim.StopMeasure()
	// 3 of 4 subnets asleep for the whole window: CSC ≈ 75%, and the
	// pre-window 5000 sleeping cycles must not inflate it beyond that.
	if r.CSCPercent < 60 || r.CSCPercent > 76 {
		t.Errorf("windowed CSC = %.1f%%, want ~75%% (delta accounting)", r.CSCPercent)
	}
	// Static power inside the window reflects only 1 of 4 subnets awake
	// plus NI leakage.
	full := sim.Model.StaticPower()
	if r.Power.Static > 0.45*full {
		t.Errorf("windowed static %.1fW too high vs %.1fW full (sleep not credited)", r.Power.Static, full)
	}
}

// TestRunSyntheticOfferedMatchesSchedule: the offered throughput reported
// must reflect the generator's schedule.
func TestRunSyntheticOfferedMatchesSchedule(t *testing.T) {
	sim := mustSim(mustDesign("1NT-512b"))
	res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.2), 1000, 8000)
	if math.Abs(res.OfferedThroughput-0.2) > 0.01 {
		t.Errorf("offered %.4f, want 0.20", res.OfferedThroughput)
	}
	if math.Abs(res.AcceptedThroughput-0.2) > 0.01 {
		t.Errorf("accepted %.4f, want 0.20 (below saturation)", res.AcceptedThroughput)
	}
}

// TestResultsString smoke-checks the human-readable summary.
func TestResultsString(t *testing.T) {
	sim := mustSim(mustDesign("1NT-512b"))
	res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.05), 500, 1500)
	s := res.String()
	if s == "" || res.Config != "1NT-512b" {
		t.Fatalf("bad summary %q", s)
	}
}

func rel(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d / m
}

// TestConfigErrors: facade-level misconfiguration is rejected, not
// panicked.
func TestConfigErrors(t *testing.T) {
	bad := BaseConfig()
	bad.Selector = SelectorCatnap
	bad.Gating = GatingOff
	bad.Subnets = 4
	bad.Metric = 99
	if _, err := New(bad); err == nil {
		t.Error("invalid metric accepted")
	}
	bad2 := BaseConfig()
	bad2.Rows = 5 // region dim 4 does not tile 5
	bad2.RegionDim = 4
	if _, err := New(bad2); err == nil {
		t.Error("untileable region accepted")
	}
}
