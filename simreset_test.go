package catnap

import (
	"context"
	"reflect"
	"testing"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// The root-level reset differentials prove the full zero-rebuild stack —
// Simulator.Reset over Network.Reset and Detector.Reset, fronted by
// SimPool — is bit-identical to fresh construction, Results struct for
// Results struct.

// runOnce runs the standard synthetic scenario on sim.
func runOnce(sim *Simulator, load float64) Results {
	return sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(load), 500, 2000)
}

// TestSimPoolBitIdentical: a pooled simulator dirtied by a different
// design must, after Get resets it, reproduce a fresh simulator's Results
// exactly for every registered design family the pool will see in sweeps.
func TestSimPoolBitIdentical(t *testing.T) {
	designs := []string{"1NT-512b", "4NT-128b", "4NT-128b-PG", "2NT-256b", "4NT-128b-PG-torus", "4NT-128b-PG-fbfly"}
	for _, d := range designs {
		cfg := mustDesign(d)
		fresh := runOnce(mustSim(cfg), 0.10)

		pool := NewSimPool()
		// Dirty the pool with a different design and load first.
		dirty := "4NT-128b-PG"
		if d == "4NT-128b-PG" {
			dirty = "1NT-512b"
		}
		dsim, err := pool.Get(mustDesign(dirty))
		if err != nil {
			t.Fatal(err)
		}
		runOnce(dsim, 0.25)

		sim, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sim != dsim {
			t.Fatalf("%s: pool rebuilt instead of resetting in place", d)
		}
		got := runOnce(sim, 0.10)
		if !reflect.DeepEqual(fresh, got) {
			t.Errorf("%s: pooled run diverges from fresh\nfresh: %+v\npooled: %+v", d, fresh, got)
		}
	}
}

// TestSimPoolRepeatedHeterogeneous cycles one pool through a
// heterogeneous design sequence twice — the steady state of a sweep
// worker — checking each leg against fresh construction.
func TestSimPoolRepeatedHeterogeneous(t *testing.T) {
	seq := []struct {
		design string
		load   float64
	}{
		{"4NT-128b-PG", 0.05},
		{"1NT-512b", 0.20},
		{"8NT-64b", 0.10},
		{"4NT-128b-PG", 0.05}, // exact repeat of leg 0
	}
	pool := NewSimPool()
	for rep := 0; rep < 2; rep++ {
		for i, leg := range seq {
			cfg := mustDesign(leg.design)
			fresh := runOnce(mustSim(cfg), leg.load)
			sim, err := pool.Get(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := runOnce(sim, leg.load)
			if !reflect.DeepEqual(fresh, got) {
				t.Errorf("rep %d leg %d (%s): pooled run diverges from fresh", rep, i, leg.design)
			}
		}
	}
}

// TestSimulatorResetInvalidConfig: Reset must reject an invalid config
// before mutating anything, leaving the simulator on its old config and
// still producing bit-identical results.
func TestSimulatorResetInvalidConfig(t *testing.T) {
	cfg := mustDesign("4NT-128b-PG")
	want := runOnce(mustSim(cfg), 0.10)

	sim := mustSim(cfg)
	bad := cfg
	bad.Selector = SelectorKind(99)
	if err := sim.Reset(bad); err == nil {
		t.Fatal("Reset accepted an unknown selector kind")
	}
	bad = cfg
	bad.Gating = GatingKind(99)
	if err := sim.Reset(bad); err == nil {
		t.Fatal("Reset accepted an unknown gating kind")
	}
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if got := runOnce(sim, 0.10); !reflect.DeepEqual(want, got) {
		t.Errorf("after rejected resets, results diverge from fresh\nwant: %+v\ngot: %+v", want, got)
	}
}

// TestExperimentReuseMatchesNoReuse is the end-to-end guard: the fig6
// sweep run through the default per-worker SimPool must render the exact
// table the fresh-construction arm does.
func TestExperimentReuseMatchesNoReuse(t *testing.T) {
	base := ExperimentOpts{
		Scale: Scale{Warmup: 300, Measure: 1000},
		Loads: []float64{0.05, 0.15},
	}
	base.Sweep.Jobs = 2

	reuse, err := RunExperiment(context.Background(), "fig6", base)
	if err != nil {
		t.Fatal(err)
	}
	noReuse := base
	noReuse.NoReuse = true
	fresh, err := RunExperiment(context.Background(), "fig6", noReuse)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Rows, reuse.Rows) {
		t.Errorf("fig6 rows diverge between reuse and fresh arms\nfresh: %v\nreuse: %v", fresh.Rows, reuse.Rows)
	}
	if !reflect.DeepEqual(fresh.Data, reuse.Data) {
		t.Errorf("fig6 typed data diverges between reuse and fresh arms")
	}
}
