package catnap

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/cpusim"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/power"
	"github.com/catnap-noc/catnap/internal/sim"
	"github.com/catnap-noc/catnap/internal/stats"
	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/trace"
	"github.com/catnap-noc/catnap/internal/traffic"
	"github.com/catnap-noc/catnap/internal/workload"
)

// Simulator assembles a network, its policies, the congestion detector,
// and the power model from one Config, and provides measurement-windowed
// runs. Build with New.
type Simulator struct {
	Cfg Config
	// Net is the underlying network; direct access supports custom
	// experiments beyond the canned runners.
	Net *noc.Network
	// Det is the congestion detector, nil when no policy needs one.
	Det *congestion.Detector
	// Model is the power model at the configuration's operating voltage.
	Model *power.Model

	gen *traffic.Generator
	sys *cpusim.System

	measuring  bool
	winLatency *stats.Latency
	winNetLat  *stats.Latency
	start      measureSnapshot
}

// measureSnapshot captures cumulative counters at measurement start.
type measureSnapshot struct {
	cycle          int64
	events         noc.PowerEvents
	orToggles      int64
	csc            int64
	created        int64
	injected       int64
	ejected        int64
	ejectedFlits   int64
	offered        int64
	flitsPerSubnet []int64
}

// New builds a simulator from cfg (defaults are applied in place of zero
// fields). Like noc.New, it is a thin shell over Reset: a fresh simulator
// and a reset one run identical wiring code, which is what makes pooled
// reuse (SimPool) bit-identical to fresh construction.
func New(cfg Config) (*Simulator, error) {
	s := &Simulator{}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rewinds the simulator in place to the state New(cfg) would
// produce: the network and congestion detector are reset in place
// (reusing every shape-compatible allocation), the policies, execution
// mode, power model, and measurement sink are rewired from cfg, and any
// attached traffic generator or system model is detached. Configuration
// errors detectable before mutation leave the simulator unchanged; a
// later wiring error (not reachable with validated configs) leaves it in
// an undefined state and it must be discarded — SimPool.Get does exactly
// that, falling back to New.
func (s *Simulator) Reset(cfg Config) error {
	cfg.ApplyDefaults()
	ncfg := cfg.nocConfig()
	needsDet := cfg.needsDetector()

	// Pre-validate everything that only depends on cfg, so an invalid
	// config cannot leave a half-reset simulator behind.
	if needsDet && !congestion.ValidKind(cfg.Metric) {
		return fmt.Errorf("catnap: unknown congestion metric %d", cfg.Metric)
	}
	switch cfg.Selector {
	case SelectorRR, SelectorRandom:
	case SelectorCatnap:
		if !needsDet {
			return fmt.Errorf("catnap: Catnap selector requires a congestion detector")
		}
	default:
		return fmt.Errorf("catnap: unknown selector kind %d", cfg.Selector)
	}
	switch cfg.Gating {
	case GatingOff, GatingBaseline:
	case GatingCatnap:
		if !needsDet {
			return fmt.Errorf("catnap: Catnap gating requires a congestion detector")
		}
	default:
		return fmt.Errorf("catnap: unknown gating kind %d", cfg.Gating)
	}

	if s.Net == nil {
		net, err := noc.New(ncfg, core.NewRRSelector(ncfg.Nodes()))
		if err != nil {
			return err
		}
		s.Net = net
	} else if err := s.Net.Reset(ncfg, core.NewRRSelector(ncfg.Nodes())); err != nil {
		return err
	}
	s.Cfg = cfg
	s.gen = nil
	s.sys = nil
	s.measuring = false
	s.winLatency = nil
	s.winNetLat = nil
	s.start = measureSnapshot{}

	if needsDet {
		dcfg := congestion.Default(cfg.Metric)
		if cfg.MetricThreshold > 0 {
			dcfg.Threshold = cfg.MetricThreshold
		}
		dcfg.UseRCS = !cfg.LocalOnly
		if s.Det == nil {
			s.Det = congestion.NewDetector(s.Net, dcfg)
		} else {
			s.Det.Reset(s.Net, dcfg)
		}
		s.Net.AddObserver(s.Det)
	} else {
		s.Det = nil
	}

	var selector noc.SubnetSelector
	switch cfg.Selector {
	case SelectorRR:
		selector = core.NewRRSelector(ncfg.Nodes())
	case SelectorRandom:
		selector = core.NewRandomSelector(sim.NewRNG(cfg.Seed ^ 0x5e1ec7))
	case SelectorCatnap:
		selector = core.NewCatnapSelector(s.Det, ncfg.Nodes())
	}
	if cfg.OrderedForward && cfg.Subnets > 1 {
		selector = &core.OrderedSelector{Class: noc.ClassForward, Subnet: 0, Fallback: selector}
	}
	s.Net.SetSelector(selector)

	switch cfg.Gating {
	case GatingOff:
	case GatingBaseline:
		s.Net.SetGatingPolicy(core.BaselineGating{})
	case GatingCatnap:
		s.Net.SetGatingPolicy(core.NewCatnapGating(s.Det))
	}

	shards := 0
	if cfg.ShardedRouters {
		shards = cfg.ShardCount
		if shards <= 0 {
			shards = runtime.GOMAXPROCS(0)
		}
	}
	// The Simulator owns every packet producer and consumer it wires up
	// (synthetic generators discard the handle; the cpusim models retain
	// only the Payload), so packet structs are recycled through per-NI
	// freelists. Custom sinks added via Net.AddSink must not retain a
	// *Packet past the callback.
	// Shard-affine dispatch is on whenever sharding is: the Simulator's
	// workloads step the same busy set cycle after cycle, which is
	// exactly the access pattern affinity rewards.
	if err := s.Net.SetExecMode(noc.ExecMode{
		Parallel:        cfg.ParallelSubnets,
		Shards:          shards,
		ShardAffinity:   shards > 0,
		PacketRecycling: true,
		IdleSkip:        !cfg.NoIdleSkip,
	}); err != nil {
		return err
	}
	s.Model = power.NewModel(cfg.powerParams(), s.Net.Config(), cfg.VoltageV)

	s.Net.AddSink(func(now int64, p *noc.Packet) {
		if s.measuring {
			s.winLatency.Observe(p.Latency())
			s.winNetLat.Observe(p.NetworkLatency())
		}
	})
	return nil
}

// EnableTrace streams a JSONL record for every delivered packet to w
// (see internal/trace for the schema), honoring writer options such as
// trace.WithGzip. Returns the trace writer; call its Flush (or Close)
// after the run.
func (s *Simulator) EnableTrace(w io.Writer, opts ...trace.Option) *trace.Writer {
	tw := trace.NewWriter(w, opts...)
	s.Net.AddSink(tw.Sink())
	return tw
}

// EnableTelemetry attaches a cycle-level telemetry collector (metrics
// registry + structured event log) to this simulator's network and
// congestion detector. label tags every exported metric point and is
// typically the experiment or sweep-point name. Returns the collector;
// read results through the recorder (Metrics, WriteEvents) after the
// run. When rec is never attached the simulator carries zero telemetry
// overhead — the hooks stay nil.
func (s *Simulator) EnableTelemetry(rec *telemetry.Recorder, label string) *telemetry.Collector {
	c := rec.Attach(s.Net, s.Det, label)
	c.SetLeakRate(s.Model.RouterLeakPJ())
	return c
}

// UseSynthetic attaches an open-loop synthetic traffic generator; call
// before Warmup/Measure. seed 0 derives one from the config seed.
func (s *Simulator) UseSynthetic(pattern traffic.Pattern, sched traffic.Schedule, seed uint64) *traffic.Generator {
	if seed == 0 {
		seed = s.Cfg.Seed ^ 0x7ea44ec0de
	}
	s.gen = traffic.NewGenerator(s.Net, pattern, sched, seed)
	return s.gen
}

// UseMix attaches the closed-loop 256-core system model running the named
// Table 3 mix.
func (s *Simulator) UseMix(mixName string) (*cpusim.System, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	scfg := cpusim.DefaultConfig()
	scfg.Seed = s.Cfg.Seed
	scfg.RealCoherence = s.Cfg.RealCoherence
	sys, err := cpusim.New(s.Net, scfg, mix)
	if err != nil {
		return nil, err
	}
	s.sys = sys
	return sys, nil
}

// UseSplitMix attaches the closed-loop system model with one Table 3 mix
// on the west half of the chip and another on the east half — the
// spatially non-uniform scenario that motivates regional congestion
// detection (§3.2.1: "applications with different network demands
// concurrently running on different nodes").
func (s *Simulator) UseSplitMix(westMix, eastMix string) (*cpusim.System, error) {
	west, err := workload.MixByName(westMix)
	if err != nil {
		return nil, err
	}
	east, err := workload.MixByName(eastMix)
	if err != nil {
		return nil, err
	}
	mesh := s.Net.Topo()
	assign := make([]*workload.Profile, mesh.Tiles())
	wIdx, eIdx := 0, 0
	for tile := range assign {
		x, _ := mesh.XY(mesh.NodeOfTile(tile))
		if x < mesh.Cols()/2 {
			p, err := workload.ByName(west.Benchmarks[wIdx%len(west.Benchmarks)])
			if err != nil {
				return nil, err
			}
			assign[tile] = p
			wIdx++
		} else {
			p, err := workload.ByName(east.Benchmarks[eIdx%len(east.Benchmarks)])
			if err != nil {
				return nil, err
			}
			assign[tile] = p
			eIdx++
		}
	}
	scfg := cpusim.DefaultConfig()
	scfg.Seed = s.Cfg.Seed
	scfg.RealCoherence = s.Cfg.RealCoherence
	sys, err := cpusim.NewWithAssignment(s.Net, scfg, assign)
	if err != nil {
		return nil, err
	}
	s.sys = sys
	return sys, nil
}

// System returns the attached system model, or nil.
func (s *Simulator) System() *cpusim.System { return s.sys }

// SetExecMode applies a validated execution mode to this simulator's
// network and keeps the congestion detector's reference-scan setting in
// sync with the network's — the single coherent surface for every
// execution knob (parallelism, sharding, reference scan, packet
// recycling, idle fast-forward). Mid-run flips are supported and results
// are bit-identical across all modes.
func (s *Simulator) SetExecMode(m noc.ExecMode) error {
	if err := s.Net.SetExecMode(m); err != nil {
		return err
	}
	if s.Det != nil {
		s.Det.SetReferenceScan(m.ReferenceScan)
	}
	return nil
}

// ExecMode returns the currently applied execution mode.
func (s *Simulator) ExecMode() noc.ExecMode { return s.Net.ExecMode() }

// Step advances one cycle, ticking the synthetic generator if attached.
func (s *Simulator) Step() {
	if s.gen != nil {
		s.gen.Tick(s.Net.Now())
	}
	s.Net.Step()
}

// trySkip attempts idle fast-forward up to the run deadline `end`,
// bounded by the attached synthetic generator's next injection cycle so
// no Tick is ever skipped over (Tick draws no randomness at zero load,
// which is what makes the jump bit-identical). The network itself bounds
// the jump by its next staged event and fans the span out to every
// observer; any observer that cannot summarize a span (the closed-loop
// system model, test probes) vetoes the whole skip.
func (s *Simulator) trySkip(end int64) {
	if !s.Net.IdleSkip() {
		return
	}
	target := end
	if s.gen != nil {
		if at, ok := s.gen.NextArrival(s.Net.Now()); ok && at < target {
			target = at
		}
	}
	s.Net.TrySkipIdle(target)
}

// Run advances n cycles, fast-forwarding through fully-quiescent idle
// spans when the execution mode's IdleSkip is armed (the default).
func (s *Simulator) Run(n int64) {
	end := s.Net.Now() + n
	for s.Net.Now() < end {
		s.trySkip(end)
		if s.Net.Now() >= end {
			break
		}
		s.Step()
	}
}

// ctxCheckCycles is how often RunCtx polls for cancellation. Checking
// every few thousand simulated cycles keeps the overhead unmeasurable
// (one channel poll per ~milliseconds of simulation) while bounding the
// cancellation latency of a sweep point.
const ctxCheckCycles = 4096

// RunCtx advances n cycles with cooperative cancellation: ctx is checked
// every ctxCheckCycles simulated cycles, and the run stops early with
// ctx.Err() when it is cancelled. A nil or Background context behaves
// exactly like Run.
func (s *Simulator) RunCtx(ctx context.Context, n int64) error {
	if ctx == nil || ctx.Done() == nil {
		s.Run(n)
		return nil
	}
	end := s.Net.Now() + n
	for i := int64(0); s.Net.Now() < end; i++ {
		if i%ctxCheckCycles == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		s.trySkip(end)
		if s.Net.Now() >= end {
			break
		}
		s.Step()
	}
	return nil
}

// StartMeasure opens a measurement window: all Results quantities are
// deltas from this point.
func (s *Simulator) StartMeasure() {
	s.winLatency = stats.NewLatency(0)
	s.winNetLat = stats.NewLatency(0)
	s.measuring = true
	s.Net.FlushCSC()
	csc, _ := s.Net.CompensatedSleepCycles()
	created, injected, ejected := s.Net.Counts()
	s.start = measureSnapshot{
		cycle:        s.Net.Now(),
		events:       s.Net.Events(),
		csc:          csc,
		created:      created,
		injected:     injected,
		ejected:      ejected,
		ejectedFlits: s.Net.EjectedFlits(),
	}
	if s.Det != nil {
		s.start.orToggles = s.Det.Energy().Toggles
	}
	if s.gen != nil {
		s.start.offered = s.gen.Offered
	}
	s.start.flitsPerSubnet = append([]int64(nil), s.Net.FlitsPerSubnet()...)
	if s.sys != nil {
		s.sys.StartMeasurement()
	}
}

// StopMeasure closes the window and returns the measured results.
func (s *Simulator) StopMeasure() Results {
	s.measuring = false
	now := s.Net.Now()
	cycles := now - s.start.cycle
	nodes := int64(s.Net.Topo().Nodes())

	events := s.Net.Events()
	events.Sub(&s.start.events)

	s.Net.FlushCSC()
	csc, _ := s.Net.CompensatedSleepCycles()
	cscDelta := csc - s.start.csc
	routerCycles := cycles * nodes * int64(s.Net.Subnets())

	var orToggles int64
	if s.Det != nil {
		orToggles = s.Det.Energy().Toggles - s.start.orToggles
	}

	created, injected, ejected := s.Net.Counts()
	r := Results{
		Config:           s.Cfg.Name,
		Cycles:           cycles,
		PacketsCreated:   created - s.start.created,
		PacketsInjected:  injected - s.start.injected,
		PacketsDelivered: ejected - s.start.ejected,
		FlitsDelivered:   s.Net.EjectedFlits() - s.start.ejectedFlits,
		AvgLatency:       s.winLatency.Mean(),
		P50Latency:       float64(s.winLatency.Percentile(50)),
		P99Latency:       float64(s.winLatency.Percentile(99)),
		AvgNetLatency:    s.winNetLat.Mean(),
		Power:            s.Model.Measure(events, cycles, s.Cfg.TBreakeven, orToggles),
		CSCPercent:       pct(cscDelta, routerCycles),
	}
	if cycles > 0 {
		r.AcceptedThroughput = float64(r.PacketsDelivered) / float64(cycles) / float64(nodes)
		r.ActiveRouterFraction = float64(events.ActiveRouterCycles) / float64(routerCycles)
	}
	if s.gen != nil {
		r.OfferedThroughput = float64(s.gen.Offered-s.start.offered) / float64(cycles) / float64(nodes)
	}
	r.SubnetShare = make([]float64, s.Net.Subnets())
	var totalFlits int64
	per := append([]int64(nil), s.Net.FlitsPerSubnet()...)
	for sub := range per {
		per[sub] -= s.start.flitsPerSubnet[sub]
		totalFlits += per[sub]
	}
	if totalFlits > 0 {
		for sub := range per {
			r.SubnetShare[sub] = float64(per[sub]) / float64(totalFlits)
		}
	}
	if s.sys != nil {
		r.SystemIPC = s.sys.SystemIPC()
	}
	return r
}

// RunSynthetic is the common open-loop experiment shape: attach pattern +
// schedule, warm up, measure. It is RunSyntheticCtx with a background
// context (which never cancels, so no error can occur).
func (s *Simulator) RunSynthetic(pattern traffic.Pattern, sched traffic.Schedule, warmup, measure int64) Results {
	res, _ := s.RunSyntheticCtx(context.Background(), pattern, sched, warmup, measure)
	return res
}

// RunSyntheticCtx is RunSynthetic with cooperative cancellation: the run
// stops between cycles (see RunCtx) when ctx is cancelled, returning
// ctx's error and zero Results.
func (s *Simulator) RunSyntheticCtx(ctx context.Context, pattern traffic.Pattern, sched traffic.Schedule, warmup, measure int64) (Results, error) {
	s.UseSynthetic(pattern, sched, 0)
	if err := s.RunCtx(ctx, warmup); err != nil {
		return Results{}, err
	}
	s.StartMeasure()
	if err := s.RunCtx(ctx, measure); err != nil {
		return Results{}, err
	}
	return s.StopMeasure(), nil
}

// RunApp is the common closed-loop experiment shape: attach the named
// Table 3 mix, warm up, measure. Cancellation follows RunCtx.
func (s *Simulator) RunApp(ctx context.Context, mixName string, warmup, measure int64) (Results, error) {
	if _, err := s.UseMix(mixName); err != nil {
		return Results{}, err
	}
	if err := s.RunCtx(ctx, warmup); err != nil {
		return Results{}, err
	}
	s.StartMeasure()
	if err := s.RunCtx(ctx, measure); err != nil {
		return Results{}, err
	}
	return s.StopMeasure(), nil
}

// pct returns 100*a/b, or 0 when b is 0.
func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Results is one measurement window's outcome.
type Results struct {
	// Config is the configuration name that produced the results.
	Config string
	// Cycles is the measurement window length.
	Cycles int64

	PacketsCreated   int64
	PacketsInjected  int64
	PacketsDelivered int64
	FlitsDelivered   int64

	// OfferedThroughput and AcceptedThroughput are in packets/node/cycle
	// (the paper's Figure 6/10/12 units). Offered is 0 without a synthetic
	// generator.
	OfferedThroughput  float64
	AcceptedThroughput float64

	// Latencies are in cycles, measured from packet creation to tail
	// ejection (AvgNetLatency excludes source queueing).
	AvgLatency    float64
	P50Latency    float64
	P99Latency    float64
	AvgNetLatency float64

	// Power is the measured network power breakdown.
	Power power.Breakdown
	// CSCPercent is the compensated-sleep-cycle percentage over all
	// routers (Figure 9/10/11/14).
	CSCPercent float64
	// ActiveRouterFraction is the mean fraction of router-cycles spent
	// active or waking.
	ActiveRouterFraction float64
	// SubnetShare is the fraction of injected flits per subnet during the
	// window (Figure 12(b)).
	SubnetShare []float64

	// SystemIPC is the summed core IPC when a system model is attached
	// (Figures 2 and 8); 0 otherwise.
	SystemIPC float64
}

// String gives a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s: %d cyc, accepted %.4f pkt/node/cyc, lat %.1f (p99 %.0f), power %.1fW, CSC %.1f%%",
		r.Config, r.Cycles, r.AcceptedThroughput, r.AvgLatency, r.P99Latency, r.Power.Total, r.CSCPercent)
}
