package catnap

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/explore"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// This file binds the internal/explore design-space search engine to the
// Catnap simulator: ExploreOpts carries the campaign knobs through
// ExperimentOpts, exploreEvaluator lowers an explore.Spec to a Config
// and measures it, and the "explore" registry entry renders the Pareto
// front as an experiment table. cmd/catnap-explore is the full-featured
// shell (cache, checkpoint/resume, frontier output) over RunExplore.

// ExploreSpace is the searched configuration grid; see explore.Space for
// the axis semantics.
type ExploreSpace = explore.Space

// ExploreFront is an explore campaign's Pareto front.
type ExploreFront = explore.Front

// ExploreCacheStats are an explore campaign's result-cache counters.
type ExploreCacheStats = explore.CacheStats

// ExploreOpts parameterizes the "explore" experiment: the design-space
// search over (subnets, link width, buffer depth, idle-detect window,
// congestion metric, gating threshold) for the power/latency Pareto
// front. The zero value searches the default space adaptively at load
// 0.10 with an in-memory cache and no checkpointing.
type ExploreOpts struct {
	// Space is the searched grid; zero-valued axes fall back to the
	// defaults (explore.DefaultSpace) axis by axis.
	Space ExploreSpace
	// Load is the offered load every point is evaluated at, in
	// packets/node/cycle; 0 selects 0.10.
	Load float64
	// Budget caps the number of points evaluated; <= 0 means the whole
	// space.
	Budget int64
	// Batch is the points-per-round granularity (also the checkpoint
	// cadence); 0 selects the engine default of 64.
	Batch int
	// Grid enumerates the space in order instead of sampling adaptively.
	Grid bool
	// ExploreFrac is the random-exploration fraction of each adaptive
	// batch, in [0, 1]; 0 selects the default 0.25.
	ExploreFrac float64
	// MinAccepted is the feasibility floor as a fraction of the offered
	// load, in [0, 1]; 0 selects the default 0.9.
	MinAccepted float64
	// SampleSeed drives the sampling RNG; 0 selects 1. SimSeed is the
	// seed every point's simulation runs with (part of each point's
	// cache key); 0 selects 1. They are independent so a re-sampled
	// campaign can still share cached simulations.
	SampleSeed uint64
	SimSeed    uint64
	// CacheDir is the on-disk result cache; "" keeps results in memory.
	CacheDir string
	// CheckpointPath enables checkpoint/resume when non-empty.
	CheckpointPath string
}

// validate checks the explore knobs with ExperimentOpts.Validate's
// field-naming convention; prefix is "ExperimentOpts.Explore".
func (o ExploreOpts) validate(prefix string) error {
	sp := o.effectiveSpace()
	if err := sp.Validate(); err != nil {
		return fmt.Errorf("catnap: %s.Space: %w", prefix, err)
	}
	for _, m := range sp.Metrics {
		if _, err := congestion.KindByName(m); err != nil {
			return fmt.Errorf("catnap: %s.Space.Metrics: %w", prefix, err)
		}
	}
	if o.Load < 0 || o.Load > 1 {
		return fmt.Errorf("catnap: %s.Load = %g, want a load in (0, 1] packets/node/cycle (0 = default 0.10)", prefix, o.Load)
	}
	if o.Batch < 0 {
		return fmt.Errorf("catnap: %s.Batch = %d, want >= 0 points (0 = default)", prefix, o.Batch)
	}
	if o.ExploreFrac < 0 || o.ExploreFrac > 1 {
		return fmt.Errorf("catnap: %s.ExploreFrac = %g, want in [0, 1] (0 = default 0.25)", prefix, o.ExploreFrac)
	}
	if o.MinAccepted < 0 || o.MinAccepted > 1 {
		return fmt.Errorf("catnap: %s.MinAccepted = %g, want in [0, 1] of offered load (0 = default 0.9)", prefix, o.MinAccepted)
	}
	return nil
}

// effectiveSpace fills zero-valued axes from the default space.
func (o ExploreOpts) effectiveSpace() ExploreSpace {
	sp, def := o.Space, explore.DefaultSpace()
	if len(sp.Subnets) == 0 {
		sp.Subnets = def.Subnets
	}
	if len(sp.Widths) == 0 {
		sp.Widths = def.Widths
	}
	if len(sp.VCDepths) == 0 {
		sp.VCDepths = def.VCDepths
	}
	if len(sp.TIdles) == 0 {
		sp.TIdles = def.TIdles
	}
	if len(sp.Metrics) == 0 {
		sp.Metrics = def.Metrics
	}
	if len(sp.Thresholds) == 0 {
		sp.Thresholds = def.Thresholds
	}
	return sp
}

// ExploreResult is the "explore" experiment's typed outcome: the final
// front with enough context to materialize and serialize it.
type ExploreResult struct {
	// Front is the final Pareto front (power ascending).
	Front *ExploreFront
	// Space and Eval reproduce each front member's full specification
	// from its index.
	Space ExploreSpace
	Eval  explore.EvalParams
	// SpaceSize, Proposed, Evaluated, Infeasible, Failures, and Rounds
	// summarize the campaign (see explore.Result).
	SpaceSize  int64
	Proposed   int64
	Evaluated  int64
	Infeasible int64
	Failures   int64
	Rounds     int
	// Cache holds the result-cache hit/miss counters.
	Cache ExploreCacheStats
}

// WriteFront writes the frontier's deterministic JSON serialization:
// identical campaigns produce byte-identical output regardless of worker
// count, cache state, or kill/resume history.
func (r *ExploreResult) WriteFront(w io.Writer) error {
	return r.Front.WriteTo(w, r.Space, r.Eval)
}

// FrontSpec materializes the full specification of front member p.
func (r *ExploreResult) FrontSpec(p explore.Point) explore.Spec {
	return r.Space.SpecAt(p.Index, r.Eval)
}

// exploreEvaluator returns the production evaluator: lower the spec to a
// Config (Catnap selection and gating over the spec's provisioning and
// detection knobs), simulate uniform-random traffic at the spec's load,
// and report the power/latency objectives.
func exploreEvaluator(o ExperimentOpts) explore.Evaluator {
	return func(ctx context.Context, spec explore.Spec) (explore.Sample, error) {
		kind, err := congestion.KindByName(spec.Metric)
		if err != nil {
			return explore.Sample{}, err
		}
		cfg := BaseConfig()
		cfg.Name = fmt.Sprintf("%dNT-%db-vc%d-ti%d-%s", spec.Subnets, spec.WidthBits, spec.VCDepth, spec.TIdle, spec.Metric)
		cfg.Subnets = spec.Subnets
		cfg.LinkWidthBits = spec.WidthBits
		cfg.VCDepth = spec.VCDepth
		cfg.TIdleDetect = spec.TIdle
		cfg.Selector = SelectorCatnap
		cfg.Gating = GatingCatnap
		cfg.Metric = kind
		cfg.MetricThreshold = spec.Threshold
		cfg.Seed = spec.Seed
		sim, err := simForCtx(ctx, o.tuneCfg(cfg))
		if err != nil {
			return explore.Sample{}, err
		}
		res, err := sim.RunSyntheticCtx(ctx, traffic.UniformRandom{}, traffic.Constant(spec.Load), spec.Warmup, spec.Measure)
		if err != nil {
			return explore.Sample{}, err
		}
		return explore.Sample{
			PowerW:     res.Power.Total,
			Latency:    res.AvgLatency,
			Accepted:   res.AcceptedThroughput,
			CSCPercent: res.CSCPercent,
		}, nil
	}
}

// exploreOptions lowers the experiment options to the engine's.
func exploreOptions(o ExperimentOpts) explore.Options {
	e := o.Explore
	load := e.Load
	if load == 0 {
		load = 0.10
	}
	sampleSeed := e.SampleSeed
	if sampleSeed == 0 {
		sampleSeed = 1
	}
	simSeed := e.SimSeed
	if simSeed == 0 {
		simSeed = 1
	}
	sc := o.Scale.or(DefaultExploreScale.Warmup, DefaultExploreScale.Measure)
	return explore.Options{
		Space: e.effectiveSpace(),
		Eval: explore.EvalParams{
			Load: load, Warmup: sc.Warmup, Measure: sc.Measure, Seed: simSeed,
		},
		Budget: e.Budget, Batch: e.Batch, Grid: e.Grid,
		ExploreFrac: e.ExploreFrac, MinAccepted: e.MinAccepted,
		Seed: sampleSeed, CacheDir: e.CacheDir, CheckpointPath: e.CheckpointPath,
		Jobs: o.Sweep.Jobs, Timeout: o.Sweep.Timeout, Progress: o.Sweep.Progress,
		WorkerState: o.Sweep.WorkerState,
	}
}

// DefaultExploreScale is the per-point simulation length of the explore
// experiment: shorter than the figure defaults because a campaign runs
// hundreds to thousands of points.
var DefaultExploreScale = Scale{Warmup: 1000, Measure: 4000}

// RunExplore executes a design-space exploration campaign with the
// production evaluator. Cancellation of ctx stops the campaign between
// simulated cycles; with a checkpoint configured, a later call resumes
// it losslessly.
func RunExplore(ctx context.Context, o ExperimentOpts) (*ExploreResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if !o.NoReuse && o.Sweep.WorkerState == nil {
		// Same default as RunExperiment: a per-worker SimPool so repeated
		// evaluations recycle one simulator across the campaign.
		o.Sweep.WorkerState = func() any { return NewSimPool() }
	}
	eopts := exploreOptions(o)
	res, err := explore.Run(ctx, exploreEvaluator(o), eopts)
	if err != nil {
		return nil, err
	}
	return &ExploreResult{
		Front: res.Front, Space: eopts.Space, Eval: eopts.Eval,
		SpaceSize: res.SpaceSize, Proposed: res.Proposed, Evaluated: res.Evaluated,
		Infeasible: res.Infeasible, Failures: res.Failures, Rounds: res.Rounds,
		Cache: res.Cache,
	}, nil
}

func init() {
	registerExperiment(ExperimentInfo{"explore", "Pareto-front search over the Catnap design space (cached, adaptive)", "study"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			start := time.Now()
			r, err := RunExplore(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "explore",
				Header: []string{"subnets", "width", "vcdepth", "tidle", "metric", "threshold", "power (W)", "latency (cyc)", "accepted", "CSC (%)"},
				Note: fmt.Sprintf("%d-point front from %d/%d points in %d rounds (%v); cache: %d hits, %d misses (%.0f%% hit rate)",
					r.Front.Len(), r.Proposed, r.SpaceSize, r.Rounds, time.Since(start).Round(time.Millisecond),
					r.Cache.Hits, r.Cache.Misses, r.Cache.HitRate()),
				Data: r,
			}
			for _, p := range r.Front.Points() {
				s := r.FrontSpec(p)
				res.Rows = append(res.Rows, []string{
					fmt.Sprint(s.Subnets), fmt.Sprint(s.WidthBits), fmt.Sprint(s.VCDepth), fmt.Sprint(s.TIdle),
					s.Metric, fmt.Sprintf("%g", s.Threshold),
					fcell(p.PowerW, 2), fcell(p.Latency, 1), fcell(p.Accepted, 3), fcell(p.CSCPercent, 1),
				})
			}
			return res, nil
		})
}
