package catnap

import (
	"context"
	"fmt"
	"time"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/cpusim"
	"github.com/catnap-noc/catnap/internal/power"
	"github.com/catnap-noc/catnap/internal/runner"
	"github.com/catnap-noc/catnap/internal/traffic"
	"github.com/catnap-noc/catnap/internal/workload"
)

// This file contains one runner per table/figure of the paper's
// evaluation. Each returns plain data structures that cmd/catnap renders
// as the paper's rows/series and bench_test.go exercises. Cycle counts are
// parameters so benchmarks can trade precision for time; zero selects the
// defaults used in EXPERIMENTS.md.
//
// Every grid-shaped runner (design × load and similar products) has a
// Ctx variant that executes its points on the internal/runner worker
// pool. The points are independent — each builds its own simulator with
// its own seeded RNG — so results are bit-identical at any worker count;
// the plain RunFigN functions are thin wrappers over the Ctx variants
// with a background context and default SweepOptions.

// SweepProgress receives per-point start/finish/error events from the
// sweep engine; see internal/runner for the event schema and
// runner.NewConsole for a ready-made terminal reporter.
type SweepProgress = runner.Progress

// SweepEvent is one sweep progress notification.
type SweepEvent = runner.Event

// SweepOptions configures how a grid runner executes its points.
type SweepOptions struct {
	// Jobs is the worker count; <= 0 selects GOMAXPROCS.
	Jobs int
	// Timeout bounds each point's wall-clock time; 0 means no limit.
	Timeout time.Duration
	// Progress receives per-point events; nil disables reporting.
	Progress SweepProgress
	// WorkerState builds one per-worker state value (see
	// runner.Options.WorkerState). RunExperiment installs a SimPool
	// builder here by default so consecutive points on a worker recycle
	// one simulator; leave nil for fresh construction per point.
	WorkerState func() any
}

func (o SweepOptions) runnerOptions() runner.Options {
	return runner.Options{Jobs: o.Jobs, Timeout: o.Timeout, Progress: o.Progress, WorkerState: o.WorkerState}
}

// sweep executes the points and unwraps the ordered results,
// surfacing the first point failure as the sweep's error.
func sweep[T any](ctx context.Context, pts []runner.Point[T], opts SweepOptions) ([]T, error) {
	return runner.Values(runner.Run(ctx, pts, opts.runnerOptions()))
}

// newSim builds a simulator for a registered design, returning (not
// panicking on) lookup errors so engine points degrade cleanly. The
// opts carry simulator-level tuning (SimWorkers) into the config.
func newSim(design string, o ExperimentOpts) (*Simulator, error) {
	cfg, err := Design(design)
	if err != nil {
		return nil, err
	}
	return New(o.tuneCfg(cfg))
}

// simForCtx builds (or, on a reuse-pool worker, recycles) a simulator for
// cfg: when the running sweep installed a SimPool as its worker state the
// pool's instance is reset in place to cfg, otherwise a fresh simulator
// is constructed. Point closures route their construction through here so
// SweepOptions.WorkerState is the only reuse switch.
func simForCtx(ctx context.Context, cfg Config) (*Simulator, error) {
	if p, ok := runner.WorkerState(ctx).(*SimPool); ok {
		return p.Get(cfg)
	}
	return New(cfg)
}

// newSimCtx is newSim routed through the worker's reuse pool, if any.
func newSimCtx(ctx context.Context, design string, o ExperimentOpts) (*Simulator, error) {
	cfg, err := Design(design)
	if err != nil {
		return nil, err
	}
	return simForCtx(ctx, o.tuneCfg(cfg))
}

// tuneCfg applies the simulator-level options to one design config:
// SimWorkers maps onto Config.ShardedRouters/ShardCount and NoIdleSkip
// onto Config.NoIdleSkip. Every runner routes its configs through here
// so a single -sim-workers or -no-skip flag reaches all simulators an
// experiment builds.
func (o ExperimentOpts) tuneCfg(cfg Config) Config {
	if o.SimWorkers != 0 {
		cfg.ShardedRouters = true
		if o.SimWorkers > 0 {
			cfg.ShardCount = o.SimWorkers
		}
	}
	if o.NoIdleSkip {
		cfg.NoIdleSkip = true
	}
	return cfg
}

// pointLabel names a (design, load) point for progress output.
func pointLabel(design string, load float64) string {
	return fmt.Sprintf("%s @ %.2f", design, load)
}

// mustSweep adapts a Ctx runner to the legacy error-free wrapper
// signature. With a background context and the built-in design names the
// error path is unreachable (it would be a programmer error, matching
// the previous mustDesign/mustSim panics).
func mustSweep[T any](vals []T, err error) []T {
	if err != nil {
		panic(err)
	}
	return vals
}

// Scale selects simulation lengths for the canned experiments.
type Scale struct {
	// Warmup cycles before measurement.
	Warmup int64
	// Measure is the measurement window length.
	Measure int64
}

func (s Scale) or(warmup, measure int64) Scale {
	if s.Warmup == 0 {
		s.Warmup = warmup
	}
	if s.Measure == 0 {
		s.Measure = measure
	}
	return s
}

// DefaultSyntheticScale is used by the synthetic-traffic figures.
var DefaultSyntheticScale = Scale{Warmup: 3000, Measure: 12000}

// DefaultAppScale is used by the application-workload figures.
var DefaultAppScale = Scale{Warmup: 5000, Measure: 15000}

// DefaultLoads is the offered-load sweep of Figures 6/10/11 in
// packets/node/cycle.
var DefaultLoads = []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}

// mustDesign resolves a registered design or panics; the experiment
// runners only reference designs registered in this package.
func mustDesign(name string) Config {
	c, err := Design(name)
	if err != nil {
		panic(err)
	}
	return c
}

// mustSim builds a simulator or panics (config errors here are programmer
// errors in the runners, not user input).
func mustSim(cfg Config) *Simulator {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ---------------------------------------------------------------------------
// Figure 2 — per-core bandwidth matters: 128b vs 512b Single-NoC on Light
// and Heavy workloads.

// Fig2Row is one bar of Figure 2.
type Fig2Row struct {
	Workload   string
	Design     string
	SystemIPC  float64
	Normalized float64 // to the 512-bit design for the same workload
}

// RunFig2 reproduces Figure 2.
//
// Deprecated: use RunExperiment(ctx, "fig2", opts).
func RunFig2(sc Scale) ([]Fig2Row, error) {
	return runFig2(ExperimentOpts{Scale: sc})
}

// runFig2 is the fig2 implementation over consolidated options.
func runFig2(o ExperimentOpts) ([]Fig2Row, error) {
	sc := o.Scale.or(DefaultAppScale.Warmup, DefaultAppScale.Measure)
	var rows []Fig2Row
	for _, mix := range []string{"Light", "Heavy"} {
		var base float64
		for _, design := range []string{"1NT-512b", "1NT-128b"} {
			cfg := mustDesign(design)
			cfg.AppTraffic = true
			sim := mustSim(o.tuneCfg(cfg))
			if _, err := sim.UseMix(mix); err != nil {
				return nil, err
			}
			sim.Run(sc.Warmup)
			sim.StartMeasure()
			sim.Run(sc.Measure)
			res := sim.StopMeasure()
			if design == "1NT-512b" {
				base = res.SystemIPC
			}
			norm := 0.0
			if base > 0 {
				norm = res.SystemIPC / base
			}
			rows = append(rows, Fig2Row{Workload: mix, Design: design, SystemIPC: res.SystemIPC, Normalized: norm})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 2 — router frequency/voltage pairs.

// runTable2 reproduces Table 2 from the crossbar critical-path model.
// The registry's "table2" entry is the sole public route to it.
func runTable2() []power.Table2Row {
	p := power.DefaultParams()
	return p.Table2()
}

// ---------------------------------------------------------------------------
// Figure 6 — throughput/latency of bandwidth-equivalent designs.

// Fig6Point is one (design, load) sample of Figure 6.
type Fig6Point struct {
	Design   string
	Offered  float64
	Accepted float64
	Latency  float64
}

// Fig6Designs are the bandwidth-equivalent configurations compared.
var Fig6Designs = []string{"1NT-512b", "2NT-256b", "4NT-128b", "8NT-64b"}

// RunFig6 sweeps uniform-random load over the Figure 6 designs (no power
// gating, round-robin selection — the §5 characterization).
//
// Deprecated: use RunExperiment(ctx, "fig6", opts).
func RunFig6(sc Scale, loads []float64) []Fig6Point {
	return mustSweep(RunFig6Ctx(context.Background(), sc, loads, SweepOptions{}))
}

// RunFig6Ctx is RunFig6 on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "fig6", opts).
func RunFig6Ctx(ctx context.Context, sc Scale, loads []float64, opts SweepOptions) ([]Fig6Point, error) {
	return runFig6(ctx, ExperimentOpts{Scale: sc, Loads: loads, Sweep: opts})
}

// runFig6 is the fig6 implementation over consolidated options.
func runFig6(ctx context.Context, o ExperimentOpts) ([]Fig6Point, error) {
	sc := o.Scale.or(DefaultSyntheticScale.Warmup, DefaultSyntheticScale.Measure)
	loads := o.Loads
	if loads == nil {
		loads = DefaultLoads
	}
	var pts []runner.Point[Fig6Point]
	for _, d := range Fig6Designs {
		for _, load := range loads {
			pts = append(pts, runner.Point[Fig6Point]{
				Label:  pointLabel(d, load),
				Cycles: sc.Warmup + sc.Measure,
				Run: func(ctx context.Context) (Fig6Point, error) {
					sim, err := newSimCtx(ctx, d, o)
					if err != nil {
						return Fig6Point{}, err
					}
					res, err := sim.RunSyntheticCtx(ctx, traffic.UniformRandom{}, traffic.Constant(load), sc.Warmup, sc.Measure)
					if err != nil {
						return Fig6Point{}, err
					}
					return Fig6Point{Design: d, Offered: load, Accepted: res.AcceptedThroughput, Latency: res.AvgLatency}, nil
				},
			})
		}
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Figure 7 — analytic power breakdown at near saturation.

// Fig7Row is one stacked bar of Figure 7.
type Fig7Row struct {
	Label     string
	VoltV     float64
	Breakdown power.Breakdown
}

// runFig7 computes the three Figure 7 bars at per-port load factor 0.5 and
// bit switching factor 0.15. The registry's "fig7" entry is the sole
// public route to it.
func runFig7() []Fig7Row {
	mk := func(label, design string, volt float64) Fig7Row {
		cfg := mustDesign(design)
		cfg.VoltageV = volt
		cfg.ApplyDefaults()
		sim := mustSim(cfg)
		return Fig7Row{Label: label, VoltV: volt, Breakdown: sim.Model.AnalyticLoadPoint(0.5, 0.15)}
	}
	return []Fig7Row{
		mk("1NT-512b 0.750V", "1NT-512b", 0.750),
		mk("4NT-128b 0.750V", "4NT-128b", 0.750),
		mk("4NT-128b 0.625V", "4NT-128b", 0.625),
	}
}

// ---------------------------------------------------------------------------
// Figures 8 and 9 — application workloads: power, performance, CSC.

// AppRow is one (workload, design) cell of Figures 8/9.
type AppRow struct {
	Workload string
	Design   string
	Results  Results
	// NormalizedPerf is SystemIPC normalized to 1NT-512b on the same
	// workload (Figure 8 right).
	NormalizedPerf float64
}

// Fig8Designs are the six configurations of Figure 8, in the paper's
// order.
var Fig8Designs = []string{"1NT-128b", "1NT-512b", "4NT-128b", "1NT-128b-PG", "1NT-512b-PG", "4NT-128b-PG"}

// AppWorkloadNames are the Table 3 mixes in demand order.
var AppWorkloadNames = []string{"Light", "Medium-Light", "Medium-Heavy", "Heavy"}

// RunAppWorkloads runs every (mix, design) pair of Figures 8/9 and
// returns the full matrix. RunFig8/RunFig9/RunHeadline all derive from it.
//
// Deprecated: use RunExperiment(ctx, "fig8", opts) (or "fig9").
func RunAppWorkloads(sc Scale, mixes, designs []string) ([]AppRow, error) {
	return RunAppWorkloadsCtx(context.Background(), sc, mixes, designs, SweepOptions{})
}

// RunAppWorkloadsCtx is RunAppWorkloads on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "fig8", opts) (or "fig9").
func RunAppWorkloadsCtx(ctx context.Context, sc Scale, mixes, designs []string, opts SweepOptions) ([]AppRow, error) {
	return runAppWorkloads(ctx, ExperimentOpts{Scale: sc, Mixes: mixes, Designs: designs, Sweep: opts})
}

// runAppWorkloads is the fig8/fig9 implementation over consolidated
// options. The (mix, design) points are independent; normalization
// against the 1NT-512b baseline happens after the sweep (with a
// dedicated baseline point per mix appended when the caller's design
// list omits it).
func runAppWorkloads(ctx context.Context, o ExperimentOpts) ([]AppRow, error) {
	sc := o.Scale.or(DefaultAppScale.Warmup, DefaultAppScale.Measure)
	mixes, designs := o.Mixes, o.Designs
	if mixes == nil {
		mixes = AppWorkloadNames
	}
	if designs == nil {
		designs = Fig8Designs
	}
	appPoint := func(mix, design string) runner.Point[AppRow] {
		return runner.Point[AppRow]{
			Label:  mix + "/" + design,
			Cycles: sc.Warmup + sc.Measure,
			Run: func(ctx context.Context) (AppRow, error) {
				cfg, err := Design(design)
				if err != nil {
					return AppRow{}, err
				}
				cfg.AppTraffic = true
				sim, err := simForCtx(ctx, o.tuneCfg(cfg))
				if err != nil {
					return AppRow{}, err
				}
				res, err := sim.RunApp(ctx, mix, sc.Warmup, sc.Measure)
				if err != nil {
					return AppRow{}, err
				}
				return AppRow{Workload: mix, Design: design, Results: res}, nil
			},
		}
	}
	hasBase := false
	for _, d := range designs {
		if d == "1NT-512b" {
			hasBase = true
		}
	}
	var pts []runner.Point[AppRow]
	for _, mix := range mixes {
		for _, design := range designs {
			pts = append(pts, appPoint(mix, design))
		}
	}
	if !hasBase {
		// Normalize against a dedicated baseline run per mix when the
		// caller's design list omits it.
		for _, mix := range mixes {
			pts = append(pts, appPoint(mix, "1NT-512b"))
		}
	}
	vals, err := sweep(ctx, pts, o.Sweep)
	if err != nil {
		return nil, err
	}
	rows := vals[:len(mixes)*len(designs)]
	base := make(map[string]float64, len(mixes))
	for _, r := range vals {
		if r.Design == "1NT-512b" {
			base[r.Workload] = r.Results.SystemIPC
		}
	}
	for i := range rows {
		if b := base[rows[i].Workload]; b > 0 {
			rows[i].NormalizedPerf = rows[i].Results.SystemIPC / b
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — synthetic load sweep with and without power gating.

// Fig10Point is one (design, load) sample with the four panel quantities.
type Fig10Point struct {
	Design     string
	Offered    float64
	PowerW     float64
	CSCPercent float64
	Accepted   float64
	Latency    float64
}

// Fig10Designs are Figure 10's four configurations.
var Fig10Designs = []string{"1NT-512b", "4NT-128b", "1NT-512b-PG", "4NT-128b-PG"}

// RunFig10 sweeps uniform-random load over the four designs.
//
// Deprecated: use RunExperiment(ctx, "fig10", opts).
func RunFig10(sc Scale, loads []float64) []Fig10Point {
	return mustSweep(RunFig10Ctx(context.Background(), sc, loads, SweepOptions{}))
}

// RunFig10Ctx is RunFig10 on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "fig10", opts).
func RunFig10Ctx(ctx context.Context, sc Scale, loads []float64, opts SweepOptions) ([]Fig10Point, error) {
	return runFig10(ctx, ExperimentOpts{Scale: sc, Loads: loads, Sweep: opts})
}

// runFig10 is the fig10 implementation over consolidated options.
func runFig10(ctx context.Context, o ExperimentOpts) ([]Fig10Point, error) {
	sc := o.Scale.or(DefaultSyntheticScale.Warmup, DefaultSyntheticScale.Measure)
	loads := o.Loads
	if loads == nil {
		loads = DefaultLoads
	}
	var pts []runner.Point[Fig10Point]
	for _, d := range Fig10Designs {
		for _, load := range loads {
			pts = append(pts, runner.Point[Fig10Point]{
				Label:  pointLabel(d, load),
				Cycles: sc.Warmup + sc.Measure,
				Run: func(ctx context.Context) (Fig10Point, error) {
					sim, err := newSimCtx(ctx, d, o)
					if err != nil {
						return Fig10Point{}, err
					}
					res, err := sim.RunSyntheticCtx(ctx, traffic.UniformRandom{}, traffic.Constant(load), sc.Warmup, sc.Measure)
					if err != nil {
						return Fig10Point{}, err
					}
					return Fig10Point{
						Design: d, Offered: load,
						PowerW: res.Power.Total, CSCPercent: res.CSCPercent,
						Accepted: res.AcceptedThroughput, Latency: res.AvgLatency,
					}, nil
				},
			})
		}
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Figure 11 — congestion-metric comparison.

// Fig11Policy names one curve of Figure 11 and builds its configuration.
type Fig11Policy struct {
	Name string
	Cfg  func() Config
}

// Fig11Policies are the six curves: the RR baseline and the five
// Catnap-policy variants (§3.4 metrics plus the local-only ablations).
var Fig11Policies = []Fig11Policy{
	{"RR", func() Config { return mustDesign("4NT-128b-PG-RR") }},
	{"BFA", func() Config { return metricDesign(congestion.BFA, false) }},
	{"Delay", func() Config { return metricDesign(congestion.Delay, false) }},
	{"BFM", func() Config { return metricDesign(congestion.BFM, false) }},
	{"BFM-local", func() Config { return metricDesign(congestion.BFM, true) }},
	{"IQOcc-local", func() Config { return metricDesign(congestion.IQOcc, true) }},
}

// metricDesign returns the 4NT-128b Catnap design with the given local
// congestion metric (and optionally regional detection disabled).
func metricDesign(metric congestion.MetricKind, localOnly bool) Config {
	cfg := mustDesign("4NT-128b-PG")
	cfg.Metric = metric
	cfg.LocalOnly = localOnly
	suffix := metric.String()
	if localOnly {
		suffix += "-local"
	}
	cfg.Name = "4NT-128b-PG-" + suffix
	return cfg
}

// Fig11Point is one (policy, load) sample.
type Fig11Point struct {
	Policy     string
	Offered    float64
	Accepted   float64
	Latency    float64
	CSCPercent float64
}

// RunFig11 sweeps one traffic pattern over the six policies. patternName
// is "uniform-random", "transpose" or "bit-complement" (panels a–c); the
// CSC column doubles as panel (d) for the RR and BFM rows.
//
// Deprecated: use RunExperiment(ctx, "fig11", opts).
func RunFig11(sc Scale, patternName string, loads []float64) ([]Fig11Point, error) {
	return RunFig11Ctx(context.Background(), sc, patternName, loads, SweepOptions{})
}

// RunFig11Ctx is RunFig11 on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "fig11", opts).
func RunFig11Ctx(ctx context.Context, sc Scale, patternName string, loads []float64, opts SweepOptions) ([]Fig11Point, error) {
	return runFig11(ctx, ExperimentOpts{Scale: sc, Pattern: patternName, Loads: loads, Sweep: opts})
}

// runFig11 is the fig11 implementation over consolidated options. An
// unknown pattern name errors up front (listing the valid choices)
// before any point runs.
func runFig11(ctx context.Context, o ExperimentOpts) ([]Fig11Point, error) {
	sc := o.Scale.or(DefaultSyntheticScale.Warmup, DefaultSyntheticScale.Measure)
	loads := o.Loads
	if loads == nil {
		loads = DefaultLoads
	}
	patternName := o.Pattern
	if patternName == "" {
		patternName = "uniform-random"
	}
	pattern, err := traffic.PatternByName(patternName)
	if err != nil {
		return nil, err
	}
	var pts []runner.Point[Fig11Point]
	for _, pol := range Fig11Policies {
		for _, load := range loads {
			pts = append(pts, runner.Point[Fig11Point]{
				Label:  pointLabel(pol.Name, load),
				Cycles: sc.Warmup + sc.Measure,
				Run: func(ctx context.Context) (Fig11Point, error) {
					sim, err := simForCtx(ctx, o.tuneCfg(pol.Cfg()))
					if err != nil {
						return Fig11Point{}, err
					}
					res, err := sim.RunSyntheticCtx(ctx, pattern, traffic.Constant(load), sc.Warmup, sc.Measure)
					if err != nil {
						return Fig11Point{}, err
					}
					return Fig11Point{
						Policy: pol.Name, Offered: load,
						Accepted: res.AcceptedThroughput, Latency: res.AvgLatency, CSCPercent: res.CSCPercent,
					}, nil
				},
			})
		}
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Figure 12 — ramp-up and decay under bursty traffic.

// Fig12Point is one 50-cycle sample of Figure 12's two panels.
type Fig12Point struct {
	Cycle       int64
	Offered     float64   // packets/node/cycle generated in the window
	Accepted    float64   // packets/node/cycle delivered in the window
	SubnetShare []float64 // fraction of injected flits per subnet
}

// RunFig12 runs the two-burst schedule on the Catnap design and samples
// throughput and subnet utilization every `window` cycles (50 in the
// paper). total is the simulated length (3000 cycles in the paper).
//
// Deprecated: use RunExperiment(ctx, "fig12", opts).
func RunFig12(total, window int64) []Fig12Point {
	return runFig12(ExperimentOpts{Total: total, Window: window})
}

// runFig12 is the fig12 implementation over consolidated options. It is
// the one canned experiment that honors ExperimentOpts.Telemetry
// directly: a non-nil recorder is attached to the single simulated
// network, so its metrics carry the windowed per-subnet power-state
// series the burst plots are built from.
func runFig12(o ExperimentOpts) []Fig12Point {
	total, window := o.Total, o.Window
	if total == 0 {
		total = 3000
	}
	if window == 0 {
		window = 50
	}
	sim := mustSim(o.tuneCfg(mustDesign("4NT-128b-PG")))
	if o.Telemetry != nil {
		sim.EnableTelemetry(o.Telemetry, "fig12")
	}
	gen := sim.UseSynthetic(traffic.UniformRandom{}, traffic.Fig12Bursts(), 0)

	nodes := float64(sim.Net.Topo().Nodes())
	subnets := sim.Net.Subnets()
	prevOffered := int64(0)
	prevEjected := int64(0)
	prevFlits := make([]int64, subnets)
	var out []Fig12Point

	for sim.Net.Now() < total {
		sim.Step()
		now := sim.Net.Now()
		if now%window != 0 {
			continue
		}
		_, _, ejected := sim.Net.Counts()
		cur := make([]int64, subnets)
		for n := 0; n < int(nodes); n++ {
			for s, c := range sim.Net.NI(n).FlitsPerSubnet {
				cur[s] += c
			}
		}
		var totalFlits int64
		share := make([]float64, subnets)
		for s := range cur {
			totalFlits += cur[s] - prevFlits[s]
		}
		for s := range cur {
			if totalFlits > 0 {
				share[s] = float64(cur[s]-prevFlits[s]) / float64(totalFlits)
			}
		}
		out = append(out, Fig12Point{
			Cycle:       now,
			Offered:     float64(gen.Offered-prevOffered) / float64(window) / nodes,
			Accepted:    float64(ejected-prevEjected) / float64(window) / nodes,
			SubnetShare: share,
		})
		prevOffered = gen.Offered
		prevEjected = ejected
		copy(prevFlits, cur)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 13 — the injection-rate metric's threshold problem.

// Fig13Point is one (threshold, load) sample for a pattern.
type Fig13Point struct {
	Pattern   string
	Threshold float64
	Offered   float64
	Latency   float64
	Accepted  float64
}

// Fig13Thresholds are the swept IR thresholds (packets/node/cycle).
var Fig13Thresholds = []float64{0.04, 0.08, 0.12, 0.16, 0.20, 0.24}

// RunFig13 sweeps IR-threshold subnet selection (no power gating, as in
// the paper) over uniform-random and transpose traffic.
//
// Deprecated: use RunExperiment(ctx, "fig13", opts).
func RunFig13(sc Scale, loads []float64) ([]Fig13Point, error) {
	return RunFig13Ctx(context.Background(), sc, loads, SweepOptions{})
}

// RunFig13Ctx is RunFig13 on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "fig13", opts).
func RunFig13Ctx(ctx context.Context, sc Scale, loads []float64, opts SweepOptions) ([]Fig13Point, error) {
	return runFig13(ctx, ExperimentOpts{Scale: sc, Loads: loads, Sweep: opts})
}

// runFig13 is the fig13 implementation over consolidated options.
func runFig13(ctx context.Context, o ExperimentOpts) ([]Fig13Point, error) {
	sc := o.Scale.or(DefaultSyntheticScale.Warmup, DefaultSyntheticScale.Measure)
	loads := o.Loads
	if loads == nil {
		loads = DefaultLoads
	}
	var pts []runner.Point[Fig13Point]
	for _, patName := range []string{"uniform-random", "transpose"} {
		pattern, err := traffic.PatternByName(patName)
		if err != nil {
			return nil, err
		}
		for _, thr := range Fig13Thresholds {
			for _, load := range loads {
				pts = append(pts, runner.Point[Fig13Point]{
					Label:  fmt.Sprintf("%s thr=%.2f @ %.2f", patName, thr, load),
					Cycles: sc.Warmup + sc.Measure,
					Run: func(ctx context.Context) (Fig13Point, error) {
						cfg, err := Design("4NT-128b")
						if err != nil {
							return Fig13Point{}, err
						}
						cfg.Selector = SelectorCatnap
						cfg.Gating = GatingOff
						cfg.Metric = congestion.IR
						cfg.MetricThreshold = thr
						cfg.Name = fmt.Sprintf("4NT-128b-IR-%.2f", thr)
						sim, err := simForCtx(ctx, o.tuneCfg(cfg))
						if err != nil {
							return Fig13Point{}, err
						}
						res, err := sim.RunSyntheticCtx(ctx, pattern, traffic.Constant(load), sc.Warmup, sc.Measure)
						if err != nil {
							return Fig13Point{}, err
						}
						return Fig13Point{Pattern: patName, Threshold: thr, Offered: load, Latency: res.AvgLatency, Accepted: res.AcceptedThroughput}, nil
					},
				})
			}
		}
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Figure 14 — the 64-core processor study.

// Fig14Point is one (design, load) sample of CSC and latency.
type Fig14Point struct {
	Design     string
	Offered    float64
	CSCPercent float64
	Latency    float64
	Accepted   float64
}

// RunFig14 sweeps uniform random over the 64-core designs.
//
// Deprecated: use RunExperiment(ctx, "fig14", opts).
func RunFig14(sc Scale, loads []float64) []Fig14Point {
	return mustSweep(RunFig14Ctx(context.Background(), sc, loads, SweepOptions{}))
}

// RunFig14Ctx is RunFig14 on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "fig14", opts).
func RunFig14Ctx(ctx context.Context, sc Scale, loads []float64, opts SweepOptions) ([]Fig14Point, error) {
	return runFig14(ctx, ExperimentOpts{Scale: sc, Loads: loads, Sweep: opts})
}

// runFig14 is the fig14 implementation over consolidated options.
func runFig14(ctx context.Context, o ExperimentOpts) ([]Fig14Point, error) {
	sc := o.Scale.or(DefaultSyntheticScale.Warmup, DefaultSyntheticScale.Measure)
	loads := o.Loads
	if loads == nil {
		loads = DefaultLoads
	}
	var pts []runner.Point[Fig14Point]
	for _, d := range []string{"64c-1NT-256b-PG", "64c-2NT-128b-PG"} {
		for _, load := range loads {
			pts = append(pts, runner.Point[Fig14Point]{
				Label:  pointLabel(d, load),
				Cycles: sc.Warmup + sc.Measure,
				Run: func(ctx context.Context) (Fig14Point, error) {
					sim, err := newSimCtx(ctx, d, o)
					if err != nil {
						return Fig14Point{}, err
					}
					res, err := sim.RunSyntheticCtx(ctx, traffic.UniformRandom{}, traffic.Constant(load), sc.Warmup, sc.Measure)
					if err != nil {
						return Fig14Point{}, err
					}
					return Fig14Point{Design: d, Offered: load, CSCPercent: res.CSCPercent, Latency: res.AvgLatency, Accepted: res.AcceptedThroughput}, nil
				},
			})
		}
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Per-benchmark characterization — runs every one of the 35 application
// profiles homogeneously (all cores the same benchmark) on a 64-core
// system and reports its realized network demand. This is the data behind
// Table 3's mix construction: the MPKI ordering must survive the closed
// loop.

// ProfileRow characterizes one benchmark.
type ProfileRow struct {
	Benchmark string
	Suite     string
	MPKI      float64 // profile input (Table 3 basis)
	IPC       float64 // realized per-core IPC
	// PacketsPerNodeCycle is the realized network demand.
	PacketsPerNodeCycle float64
	AvgLatency          float64
}

// RunProfiles characterizes every benchmark in the library on a 64-core
// 1NT-256b system (characterization needs per-core behaviour, not chip
// scale).
//
// Deprecated: use RunExperiment(ctx, "profiles", opts).
func RunProfiles(sc Scale) ([]ProfileRow, error) {
	return RunProfilesCtx(context.Background(), sc, SweepOptions{})
}

// RunProfilesCtx is RunProfiles on the parallel sweep engine — one point
// per benchmark profile.
//
// Deprecated: use RunExperiment(ctx, "profiles", opts).
func RunProfilesCtx(ctx context.Context, sc Scale, opts SweepOptions) ([]ProfileRow, error) {
	return runProfiles(ctx, ExperimentOpts{Scale: sc, Sweep: opts})
}

// runProfiles is the profiles implementation over consolidated options.
func runProfiles(ctx context.Context, o ExperimentOpts) ([]ProfileRow, error) {
	sc := o.Scale.or(3000, 10000)
	var pts []runner.Point[ProfileRow]
	for i := range workload.Profiles {
		prof := &workload.Profiles[i]
		pts = append(pts, runner.Point[ProfileRow]{
			Label:  prof.Name,
			Cycles: sc.Warmup + sc.Measure,
			Run: func(ctx context.Context) (ProfileRow, error) {
				cfg := BaseConfig()
				cfg.Name = "64c-1NT-256b"
				cfg.Rows, cfg.Cols, cfg.RegionDim = 4, 4, 2
				cfg.Subnets, cfg.LinkWidthBits = 1, 256
				cfg.AppTraffic = true
				cfg.ApplyDefaults()
				sim, err := simForCtx(ctx, o.tuneCfg(cfg))
				if err != nil {
					return ProfileRow{}, err
				}
				assign := make([]*workload.Profile, sim.Net.Topo().Tiles())
				for t := range assign {
					assign[t] = prof
				}
				scfg := cpusim.DefaultConfig()
				scfg.Seed = cfg.Seed
				sys, err := cpusim.NewWithAssignment(sim.Net, scfg, assign)
				if err != nil {
					return ProfileRow{}, err
				}
				sim.sys = sys
				if err := sim.RunCtx(ctx, sc.Warmup); err != nil {
					return ProfileRow{}, err
				}
				sim.StartMeasure()
				if err := sim.RunCtx(ctx, sc.Measure); err != nil {
					return ProfileRow{}, err
				}
				res := sim.StopMeasure()
				nodes := float64(sim.Net.Topo().Nodes())
				cores := float64(len(assign))
				return ProfileRow{
					Benchmark:           prof.Name,
					Suite:               prof.Suite,
					MPKI:                prof.MPKI(),
					IPC:                 res.SystemIPC / cores,
					PacketsPerNodeCycle: float64(res.PacketsDelivered) / float64(res.Cycles) / nodes,
					AvgLatency:          res.AvgLatency,
				}, nil
			},
		})
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Topology comparison — beyond the paper's figures (its §8 future work):
// does the Catnap story survive on a topology with wraparound links?

// TopologyPoint is one (design, load) sample of the mesh-vs-torus
// comparison.
type TopologyPoint struct {
	Design     string
	Offered    float64
	Accepted   float64
	Latency    float64
	PowerW     float64
	CSCPercent float64
}

// RunTopology sweeps uniform random over the mesh, torus, and flattened
// butterfly Catnap designs.
//
// Deprecated: use RunExperiment(ctx, "topology", opts).
func RunTopology(sc Scale, loads []float64) []TopologyPoint {
	return mustSweep(RunTopologyCtx(context.Background(), sc, loads, SweepOptions{}))
}

// RunTopologyCtx is RunTopology on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "topology", opts).
func RunTopologyCtx(ctx context.Context, sc Scale, loads []float64, opts SweepOptions) ([]TopologyPoint, error) {
	return runTopology(ctx, ExperimentOpts{Scale: sc, Loads: loads, Sweep: opts})
}

// runTopology is the topology implementation over consolidated options.
func runTopology(ctx context.Context, o ExperimentOpts) ([]TopologyPoint, error) {
	sc := o.Scale.or(DefaultSyntheticScale.Warmup, DefaultSyntheticScale.Measure)
	loads := o.Loads
	if loads == nil {
		loads = DefaultLoads
	}
	var pts []runner.Point[TopologyPoint]
	for _, d := range []string{"4NT-128b-PG", "4NT-128b-PG-torus", "4NT-128b-PG-fbfly"} {
		for _, load := range loads {
			pts = append(pts, runner.Point[TopologyPoint]{
				Label:  pointLabel(d, load),
				Cycles: sc.Warmup + sc.Measure,
				Run: func(ctx context.Context) (TopologyPoint, error) {
					sim, err := newSimCtx(ctx, d, o)
					if err != nil {
						return TopologyPoint{}, err
					}
					res, err := sim.RunSyntheticCtx(ctx, traffic.UniformRandom{}, traffic.Constant(load), sc.Warmup, sc.Measure)
					if err != nil {
						return TopologyPoint{}, err
					}
					return TopologyPoint{
						Design: d, Offered: load,
						Accepted: res.AcceptedThroughput, Latency: res.AvgLatency,
						PowerW: res.Power.Total, CSCPercent: res.CSCPercent,
					}, nil
				},
			})
		}
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Heterogeneous placement — beyond the paper's figures, but directly its
// §3.2.1 motivation: when a Heavy mix runs on the west half of the chip
// and a Light mix on the east half, traffic is spatially non-uniform and
// local congestion detection at an injecting node lags the congestion its
// packets will meet. Regional detection (the 1-bit OR network) closes
// that gap.

// HeteroRow is one detection variant's outcome on the split-chip
// scenario.
type HeteroRow struct {
	Variant string
	Results Results
}

// RunHetero compares regional vs local-only BFM detection on the
// Heavy-west / Light-east split chip.
//
// Deprecated: use RunExperiment(ctx, "hetero", opts).
func RunHetero(sc Scale) ([]HeteroRow, error) {
	return RunHeteroCtx(context.Background(), sc, SweepOptions{})
}

// RunHeteroCtx is RunHetero on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "hetero", opts).
func RunHeteroCtx(ctx context.Context, sc Scale, opts SweepOptions) ([]HeteroRow, error) {
	return runHetero(ctx, ExperimentOpts{Scale: sc, Sweep: opts})
}

// runHetero is the hetero implementation over consolidated options.
func runHetero(ctx context.Context, o ExperimentOpts) ([]HeteroRow, error) {
	sc := o.Scale.or(DefaultAppScale.Warmup, DefaultAppScale.Measure)
	var pts []runner.Point[HeteroRow]
	for _, localOnly := range []bool{false, true} {
		label := "regional"
		if localOnly {
			label = "local-only"
		}
		pts = append(pts, runner.Point[HeteroRow]{
			Label:  "hetero/" + label,
			Cycles: sc.Warmup + sc.Measure,
			Run: func(ctx context.Context) (HeteroRow, error) {
				cfg, err := Design("4NT-128b-PG")
				if err != nil {
					return HeteroRow{}, err
				}
				cfg.AppTraffic = true
				cfg.LocalOnly = localOnly
				cfg.Name = "4NT-128b-PG-" + label
				sim, err := simForCtx(ctx, o.tuneCfg(cfg))
				if err != nil {
					return HeteroRow{}, err
				}
				if _, err := sim.UseSplitMix("Heavy", "Light"); err != nil {
					return HeteroRow{}, err
				}
				if err := sim.RunCtx(ctx, sc.Warmup); err != nil {
					return HeteroRow{}, err
				}
				sim.StartMeasure()
				if err := sim.RunCtx(ctx, sc.Measure); err != nil {
					return HeteroRow{}, err
				}
				return HeteroRow{Variant: label, Results: sim.StopMeasure()}, nil
			},
		})
	}
	return sweep(ctx, pts, o.Sweep)
}

// ---------------------------------------------------------------------------
// Headline — §1/§6.2: average power and performance across workloads.

// Headline summarises the paper's headline comparison.
type Headline struct {
	// SingleAvgPowerW and MultiPGAvgPowerW average network power across
	// the four Table 3 workloads (paper: ≈36 W vs ≈20 W).
	SingleAvgPowerW  float64
	MultiPGAvgPowerW float64
	// PowerReduction is 1 − multi/single (paper: ≈44%).
	PowerReduction float64
	// AvgPerfCost is the mean performance loss of 4NT-128b-PG vs 1NT-512b
	// (paper: ≈5%).
	AvgPerfCost float64
	// LightCSCPercent is the compensated sleep cycles on the Light mix
	// (paper: ≈70%).
	LightCSCPercent float64
}

// RunHeadline computes the headline numbers from the Figure 8/9 matrix.
//
// Deprecated: use RunExperiment(ctx, "headline", opts).
func RunHeadline(sc Scale) (Headline, error) {
	return RunHeadlineCtx(context.Background(), sc, SweepOptions{})
}

// RunHeadlineCtx is RunHeadline with the underlying Figure 8/9 matrix
// executed on the parallel sweep engine.
//
// Deprecated: use RunExperiment(ctx, "headline", opts).
func RunHeadlineCtx(ctx context.Context, sc Scale, opts SweepOptions) (Headline, error) {
	return runHeadline(ctx, ExperimentOpts{Scale: sc, Sweep: opts})
}

// runHeadline is the headline implementation over consolidated options.
func runHeadline(ctx context.Context, o ExperimentOpts) (Headline, error) {
	o.Mixes, o.Designs = nil, []string{"1NT-512b", "4NT-128b-PG"}
	rows, err := runAppWorkloads(ctx, o)
	if err != nil {
		return Headline{}, err
	}
	var h Headline
	var nSingle, nMulti, nPerf int
	for _, r := range rows {
		switch r.Design {
		case "1NT-512b":
			h.SingleAvgPowerW += r.Results.Power.Total
			nSingle++
		case "4NT-128b-PG":
			h.MultiPGAvgPowerW += r.Results.Power.Total
			h.AvgPerfCost += 1 - r.NormalizedPerf
			nMulti++
			nPerf++
			if r.Workload == "Light" {
				h.LightCSCPercent = r.Results.CSCPercent
			}
		}
	}
	if nSingle > 0 {
		h.SingleAvgPowerW /= float64(nSingle)
	}
	if nMulti > 0 {
		h.MultiPGAvgPowerW /= float64(nMulti)
	}
	if nPerf > 0 {
		h.AvgPerfCost /= float64(nPerf)
	}
	if h.SingleAvgPowerW > 0 {
		h.PowerReduction = 1 - h.MultiPGAvgPowerW/h.SingleAvgPowerW
	}
	return h, nil
}

// Ensure workload is linked for the mix names documented above.
var _ = workload.Mixes
