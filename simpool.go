package catnap

// SimPool recycles one Simulator across consecutive sweep points so that
// repeated evaluation reuses the network's slab allocations instead of
// rebuilding them per point (see DESIGN.md §4i). A pool is owned by
// exactly one worker goroutine and is not safe for concurrent use; the
// sweep engine creates one per worker via runner.Options.WorkerState and
// point closures fetch it back with runner.WorkerState(ctx).
//
// Reuse is bit-identical to fresh construction: Simulator.Reset rewinds
// every mutable structure to the New state (the reset differential suite
// asserts per-cycle state equality), so pooled and unpooled runs of the
// same seed produce byte-identical results.
type SimPool struct {
	sim *Simulator
}

// NewSimPool returns an empty pool.
func NewSimPool() *SimPool { return &SimPool{} }

// Get returns a simulator configured exactly as New(cfg) would, resetting
// the pooled instance in place when one exists. A nil pool degrades to
// plain construction, so call sites need no reuse-mode branching. If an
// in-place reset fails past config validation (not reachable with
// validated configs), the instance is discarded and a fresh simulator is
// built and pooled in its place.
func (p *SimPool) Get(cfg Config) (*Simulator, error) {
	if p != nil && p.sim != nil {
		if err := p.sim.Reset(cfg); err == nil {
			return p.sim, nil
		}
		p.sim = nil
	}
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if p != nil {
		p.sim = sim
	}
	return sim, nil
}
