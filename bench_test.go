package catnap

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates its experiment at a reduced-but-meaningful scale and
// reports the headline quantities as custom benchmark metrics, so
// `go test -bench=.` reproduces the whole evaluation and prints the
// numbers next to the timing. cmd/catnap prints the full-resolution
// rows/series; EXPERIMENTS.md records paper-vs-measured values.

import (
	"context"
	"runtime"
	"testing"

	"github.com/catnap-noc/catnap/internal/power"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// benchScale keeps per-iteration cost moderate while staying long enough
// for steady-state behaviour (warmup exceeds the longest wake-up and
// RCS-latch transients by two orders of magnitude).
var benchScale = Scale{Warmup: 1500, Measure: 6000}

var benchLoads = []float64{0.05, 0.15, 0.30, 0.45}

// BenchmarkFig2 regenerates Figure 2: normalized system performance of an
// under-provisioned 128-bit Single-NoC vs the 512-bit baseline on the
// Light and Heavy workloads.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFig2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Design == "1NT-128b" {
				b.ReportMetric(r.Normalized, r.Workload+"_128b_normPerf")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2 from the crossbar critical-path
// model.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(context.Background(), "table2", ExperimentOpts{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Data.([]power.Table2Row) {
			if r.WidthBits == 128 && r.VoltV == 0.625 {
				b.ReportMetric(r.FreqGHz, "GHz_128b_0.625V")
			}
			if r.WidthBits == 512 && r.VoltV == 0.750 {
				b.ReportMetric(r.FreqGHz, "GHz_512b_0.750V")
			}
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: saturation throughput of the
// bandwidth-equivalent 1/2/4/8-subnet designs under uniform random.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := RunFig6(benchScale, benchLoads)
		sat := map[string]float64{}
		for _, p := range pts {
			if p.Accepted > sat[p.Design] {
				sat[p.Design] = p.Accepted
			}
		}
		for d, v := range sat {
			b.ReportMetric(v, d+"_satThroughput")
		}
	}
}

// BenchmarkFig7 regenerates Figure 7's analytic power bars.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(context.Background(), "fig7", ExperimentOpts{})
		if err != nil {
			b.Fatal(err)
		}
		rows := res.Data.([]Fig7Row)
		b.ReportMetric(rows[0].Breakdown.Total, "single_0.750V_W")
		b.ReportMetric(rows[1].Breakdown.Total, "multi_0.750V_W")
		b.ReportMetric(rows[2].Breakdown.Total, "multi_0.625V_W")
	}
}

// BenchmarkFig8 regenerates Figure 8 on its two extreme workloads: power
// and normalized performance of the six designs.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAppWorkloads(benchScale, []string{"Light", "Heavy"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Design {
			case "1NT-512b", "4NT-128b-PG":
				b.ReportMetric(r.Results.Power.Total, r.Workload+"_"+r.Design+"_W")
			}
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: compensated sleep cycles for the
// power-gated designs on Light and Heavy.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAppWorkloads(benchScale, []string{"Light", "Heavy"},
			[]string{"1NT-512b-PG", "4NT-128b-PG"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Results.CSCPercent, r.Workload+"_"+r.Design+"_CSC%")
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: power/CSC/throughput/latency vs
// load with and without power gating, uniform random.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := RunFig10(benchScale, benchLoads)
		for _, p := range pts {
			if p.Offered == 0.05 {
				b.ReportMetric(p.PowerW, p.Design+"_W@0.05")
				b.ReportMetric(p.CSCPercent, p.Design+"_CSC%@0.05")
			}
		}
	}
}

// BenchmarkFig11 regenerates Figure 11(a): the six policies on uniform
// random, reporting latency at a moderate load and the RR-vs-BFM CSC gap.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := RunFig11(benchScale, "uniform-random", []float64{0.05, 0.15})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Offered == 0.15 {
				b.ReportMetric(p.Latency, p.Policy+"_lat@0.15")
			}
			if p.Offered == 0.05 && (p.Policy == "RR" || p.Policy == "BFM") {
				b.ReportMetric(p.CSCPercent, p.Policy+"_CSC%@0.05")
			}
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: bursty ramp-up — reporting how
// fast accepted throughput catches the 0.30 burst and how many subnets
// the second, smaller burst opens.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := RunFig12(3000, 50)
		var catchup int64 = -1
		burst2Subnets := 0.0
		for _, p := range pts {
			if catchup < 0 && p.Cycle > 1000 && p.Cycle <= 1500 && p.Accepted >= 0.27 {
				catchup = p.Cycle - 1000
			}
			if p.Cycle > 2300 && p.Cycle <= 2500 {
				n := 0.0
				for _, s := range p.SubnetShare {
					if s > 0.05 {
						n++
					}
				}
				if n > burst2Subnets {
					burst2Subnets = n
				}
			}
		}
		b.ReportMetric(float64(catchup), "burst1_catchupCycles")
		b.ReportMetric(burst2Subnets, "burst2_subnetsOpen")
	}
}

// BenchmarkFig13 regenerates Figure 13: the IR selector's threshold
// dilemma — latency at a moderate load for the lowest and highest
// thresholds on both patterns.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := RunFig13(benchScale, []float64{0.10, 0.20})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Offered == 0.20 && (p.Threshold == 0.04 || p.Threshold == 0.24) {
				b.ReportMetric(p.Latency, p.Pattern+"_thr"+f2(p.Threshold)+"_lat@0.20")
			}
		}
	}
}

// BenchmarkFig14 regenerates Figure 14: the 64-core study's CSC at low
// load for the Single- and Multi-NoC designs.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := RunFig14(benchScale, []float64{0.05, 0.15, 0.30})
		for _, p := range pts {
			if p.Offered == 0.05 {
				b.ReportMetric(p.CSCPercent, p.Design+"_CSC%@0.05")
			}
		}
	}
}

// BenchmarkHeadline regenerates the paper's headline comparison.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := RunHeadline(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.PowerReduction*100, "powerReduction%")
		b.ReportMetric(h.AvgPerfCost*100, "perfCost%")
		b.ReportMetric(h.LightCSCPercent, "lightCSC%")
	}
}

// --- sweep-engine benchmarks ------------------------------------------------

// BenchmarkSweepFig6Jobs1 runs the Figure 6 grid through the sweep
// engine pinned to one worker — the sequential baseline for the
// parallel speedup below.
func BenchmarkSweepFig6Jobs1(b *testing.B) {
	benchSweepFig6(b, 1)
}

// BenchmarkSweepFig6JobsMax runs the same grid at GOMAXPROCS workers;
// compare against Jobs1 for the wall-clock speedup (results are
// bit-identical at any worker count).
func BenchmarkSweepFig6JobsMax(b *testing.B) {
	benchSweepFig6(b, runtime.GOMAXPROCS(0))
}

func benchSweepFig6(b *testing.B, jobs int) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		pts, err := RunFig6Ctx(context.Background(), benchScale, benchLoads, SweepOptions{Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		cycles += int64(len(pts)) * (benchScale.Warmup + benchScale.Measure)
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simCycles/s")
}

// --- engine micro-benchmarks ------------------------------------------------

// BenchmarkNetworkStep measures simulator speed: cycles/second for the
// full 4-subnet 256-core network under moderate uniform-random load.
func BenchmarkNetworkStep(b *testing.B) {
	sim := mustSim(mustDesign("4NT-128b-PG"))
	sim.UseSynthetic(traffic.UniformRandom{}, traffic.Constant(0.10), 1)
	sim.Run(1000) // settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkNetworkStepIdle measures the power-gating fast path: a fully
// slept network should cost far less to simulate per cycle.
func BenchmarkNetworkStepIdle(b *testing.B) {
	sim := mustSim(mustDesign("4NT-128b-PG"))
	sim.Run(500) // everything asleep
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkPacketDelivery measures end-to-end cost per delivered packet
// on the Single-NoC.
func BenchmarkPacketDelivery(b *testing.B) {
	sim := mustSim(mustDesign("1NT-512b"))
	sim.UseSynthetic(traffic.UniformRandom{}, traffic.Constant(0.20), 1)
	sim.Run(1000)
	sim.StartMeasure()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.StopTimer()
	res := sim.StopMeasure()
	if res.PacketsDelivered > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(res.PacketsDelivered), "ns/packet")
	}
}

func f2(v float64) string {
	return string([]byte{'0' + byte(int(v*100)/10%10), '0' + byte(int(v*100)%10)})
}
